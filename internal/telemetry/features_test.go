package telemetry

import (
	"math"
	"testing"
	"time"
)

func TestFeatureSeriesValidation(t *testing.T) {
	if _, err := NewFeatureSeries(0, time.Second, 0); err == nil {
		t.Error("zero resolution accepted")
	}
	if _, err := NewFeatureSeries(50*time.Millisecond, 0, 0); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := NewFeatureSeries(50*time.Millisecond, time.Second, -1); err == nil {
		t.Error("negative tail threshold accepted")
	}
}

func TestFeatureSeriesBooking(t *testing.T) {
	fs, err := NewFeatureSeries(100*time.Millisecond, time.Second, 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// Two traces in window 0, one tail-heavy trace in window 3.
	fs.Add(10*time.Millisecond, 20*time.Millisecond, 5*time.Millisecond, 15*time.Millisecond, 0, 1, 0)
	fs.Add(90*time.Millisecond, 40*time.Millisecond, 10*time.Millisecond, 30*time.Millisecond, 0, 1, 0)
	fs.Add(350*time.Millisecond, 400*time.Millisecond, 20*time.Millisecond, 30*time.Millisecond, 340*time.Millisecond, 3, 2)

	wins := fs.Windows()
	if len(wins) != 4 {
		t.Fatalf("got %d windows, want 4 (extension up to the booked index)", len(wins))
	}
	w0 := wins[0]
	if w0.Count != 2 || w0.Attempts != 2 || w0.Drops != 0 || w0.TailOver != 0 {
		t.Errorf("window 0 = %+v", w0)
	}
	if w0.MeanRT() != 30*time.Millisecond {
		t.Errorf("window 0 mean RT = %v, want 30ms", w0.MeanRT())
	}
	if wins[1].Count != 0 || wins[2].Count != 0 {
		t.Error("skipped windows not empty")
	}
	w3 := wins[3]
	if w3.Count != 1 || w3.Attempts != 3 || w3.Drops != 2 || w3.TailOver != 1 {
		t.Errorf("window 3 = %+v", w3)
	}
	if got := w3.RetransShare(); math.Abs(got-0.85) > 1e-9 {
		t.Errorf("retrans share = %v, want 0.85", got)
	}
	if got := w3.QueueShare(); math.Abs(got-0.05) > 1e-9 {
		t.Errorf("queue share = %v, want 0.05", got)
	}
	if got := w3.ServiceShare(); math.Abs(got-0.075) > 1e-9 {
		t.Errorf("service share = %v, want 0.075", got)
	}
	if got := w3.DropRate(); math.Abs(got-2.0/3.0) > 1e-9 {
		t.Errorf("drop rate = %v, want 2/3", got)
	}
	if fs.WindowStart(3) != 300*time.Millisecond {
		t.Errorf("window 3 start = %v, want 300ms", fs.WindowStart(3))
	}

	// Out-of-range closes are dropped, not booked or panicking.
	fs.Add(-time.Millisecond, time.Millisecond, 0, 0, 0, 1, 0)
	fs.Add(2*time.Second, time.Millisecond, 0, 0, 0, 1, 0)
	if len(fs.Windows()) != 4 {
		t.Error("out-of-range close extended the series")
	}
}

func TestFeatureSeriesRebase(t *testing.T) {
	fs, err := NewFeatureSeries(100*time.Millisecond, time.Second, 0)
	if err != nil {
		t.Fatal(err)
	}
	fs.Add(50*time.Millisecond, time.Millisecond, 0, time.Millisecond, 0, 1, 0)
	fs.reset(10 * time.Second)
	if len(fs.Windows()) != 0 {
		t.Error("reset kept windows")
	}
	if fs.Base() != 10*time.Second {
		t.Errorf("base = %v, want 10s", fs.Base())
	}
	// Pre-rebase stragglers fall before the new base and are dropped.
	fs.Add(9*time.Second, time.Millisecond, 0, time.Millisecond, 0, 1, 0)
	if len(fs.Windows()) != 0 {
		t.Error("pre-base close was booked")
	}
	fs.Add(10*time.Second+150*time.Millisecond, time.Millisecond, 0, time.Millisecond, 0, 1, 0)
	if len(fs.Windows()) != 2 || fs.Windows()[1].Count != 1 {
		t.Errorf("post-rebase booking landed wrong: %d windows", len(fs.Windows()))
	}
	if fs.WindowStart(1) != 10*time.Second+100*time.Millisecond {
		t.Errorf("rebased window 1 start = %v", fs.WindowStart(1))
	}
}

func TestWindowFeaturesZeroDenominators(t *testing.T) {
	var w WindowFeatures
	if w.MeanRT() != 0 || w.RetransShare() != 0 || w.QueueShare() != 0 ||
		w.ServiceShare() != 0 || w.DropRate() != 0 {
		t.Error("empty window features not all zero")
	}
}

// TestTracerFeatureAccessors checks the Spec wiring: one series per
// configured window, retrievable by resolution.
func TestTracerFeatureAccessors(t *testing.T) {
	tr := goldenScenario(t)
	if got := len(tr.Features()); got != 1 {
		t.Fatalf("got %d feature series, want 1", got)
	}
	if tr.FeaturesAt(50*time.Millisecond) == nil {
		t.Error("FeaturesAt(50ms) = nil")
	}
	if tr.FeaturesAt(time.Second) != nil {
		t.Error("FeaturesAt(1s) found an unconfigured series")
	}
}
