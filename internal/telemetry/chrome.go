package telemetry

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"memca/internal/queueing"
)

// chromeEvent is one Chrome trace-event (the about://tracing and Perfetto
// interchange format). Field order fixes the JSON key order, keeping
// exports byte-identical across runs.
type chromeEvent struct {
	Name string      `json:"name"`
	Ph   string      `json:"ph"`
	TS   float64     `json:"ts"`
	Dur  *float64    `json:"dur,omitempty"`
	PID  int         `json:"pid"`
	TID  uint64      `json:"tid"`
	S    string      `json:"s,omitempty"`
	Args *chromeArgs `json:"args,omitempty"`
}

type chromeArgs struct {
	Name     string   `json:"name,omitempty"`
	Attempt  *int     `json:"attempt,omitempty"`
	FireAtMs *float64 `json:"fire_at_ms,omitempty"`
}

// sort key: primary start time, secondary origin sequence number so ties
// at one virtual instant keep the tracer's causal order.
type chromeRecord struct {
	ev  chromeEvent
	ts  time.Duration
	seq uint64
}

func usec(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

func msec(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// WriteChromeTrace reconstructs spans from a span-event sequence and
// writes them as Chrome trace-event JSON, loadable in Perfetto or
// about://tracing. Each tier is a process (pid = tier+1; the client is
// pid 0) and each trace is a thread, so one row of the viewer shows one
// request's full causal path: queue and service slabs per tier, drop and
// retransmission markers in between.
//
// The ring may have overwritten the oldest events; spans whose start was
// lost are skipped.
func WriteChromeTrace(path string, tierNames []string, events []SpanEvent) (err error) {
	type openSpan struct {
		t   time.Duration
		seq uint64
		ok  bool
	}
	type spanKey struct {
		trace uint64
		tier  int8
	}
	queueOpen := make(map[spanKey]openSpan)
	svcOpen := make(map[spanKey]openSpan)
	reqOpen := make(map[uint64]openSpan)

	recs := make([]chromeRecord, 0, len(events)+len(tierNames)+1)
	addMeta := func(pid int, name string) {
		recs = append(recs, chromeRecord{
			ev: chromeEvent{Name: "process_name", Ph: "M", PID: pid, Args: &chromeArgs{Name: name}},
		})
	}
	addMeta(0, "client")
	for i, name := range tierNames {
		addMeta(i+1, fmt.Sprintf("tier%d:%s", i, name))
	}

	addX := func(name string, pid int, trace uint64, open openSpan, end time.Duration, attempt uint16) {
		dur := usec(end - open.t)
		at := int(attempt)
		recs = append(recs, chromeRecord{
			ev: chromeEvent{
				Name: name, Ph: "X", TS: usec(open.t), Dur: &dur,
				PID: pid, TID: trace, Args: &chromeArgs{Attempt: &at},
			},
			ts: open.t, seq: open.seq,
		})
	}
	addI := func(name string, pid int, e *SpanEvent, args *chromeArgs) {
		recs = append(recs, chromeRecord{
			ev: chromeEvent{Name: name, Ph: "i", TS: usec(e.T), PID: pid, TID: e.TraceID, S: "t", Args: args},
			ts: e.T, seq: e.Seq,
		})
	}

	for i := range events {
		e := &events[i]
		k := spanKey{e.TraceID, e.Tier}
		switch e.Kind {
		case EventKind(queueing.SpanSubmit):
			if e.Attempt == 0 {
				reqOpen[e.TraceID] = openSpan{e.T, e.Seq, true}
			}
		case EventKind(queueing.SpanTierRequest):
			queueOpen[k] = openSpan{e.T, e.Seq, true}
		case EventKind(queueing.SpanServiceStart):
			if o := queueOpen[k]; o.ok {
				addX("queue", int(e.Tier)+1, e.TraceID, o, e.T, e.Attempt)
				delete(queueOpen, k)
			}
			svcOpen[k] = openSpan{e.T, e.Seq, true}
		case EventKind(queueing.SpanServiceEnd):
			if o := svcOpen[k]; o.ok {
				addX("service", int(e.Tier)+1, e.TraceID, o, e.T, e.Attempt)
				delete(svcOpen, k)
			}
		case EventKind(queueing.SpanServicePreempt):
			addI("capacity-preempt", int(e.Tier)+1, e, nil)
		case EventKind(queueing.SpanDrop):
			delete(queueOpen, k)
			addI("drop", int(e.Tier)+1, e, nil)
		case EventKind(queueing.SpanComplete):
			if o := reqOpen[e.TraceID]; o.ok {
				addX("request", 0, e.TraceID, o, e.T, e.Attempt)
				delete(reqOpen, e.TraceID)
			}
		case EvRetransmitScheduled:
			at := int(e.Attempt)
			fire := msec(e.Aux)
			addI("retransmit-scheduled", 0, e, &chromeArgs{Attempt: &at, FireAtMs: &fire})
		case EvAbandoned:
			delete(reqOpen, e.TraceID)
			addI("abandoned", 0, e, nil)
		}
	}

	sort.SliceStable(recs, func(i, j int) bool {
		if recs[i].ts != recs[j].ts {
			return recs[i].ts < recs[j].ts
		}
		return recs[i].seq < recs[j].seq
	})

	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("telemetry: creating directory for %s: %w", path, err)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("telemetry: creating %s: %w", path, err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("telemetry: closing %s: %w", path, cerr)
		}
	}()
	// One event per line keeps the file diffable and the goldens readable.
	if _, err := f.WriteString("{\"traceEvents\":[\n"); err != nil {
		return fmt.Errorf("telemetry: writing %s: %w", path, err)
	}
	for i := range recs {
		data, err := json.Marshal(recs[i].ev)
		if err != nil {
			return fmt.Errorf("telemetry: marshaling event %d for %s: %w", i, path, err)
		}
		sep := ",\n"
		if i == len(recs)-1 {
			sep = "\n"
		}
		if _, err := f.Write(append(data, sep...)); err != nil {
			return fmt.Errorf("telemetry: writing %s: %w", path, err)
		}
	}
	if _, err := f.WriteString("],\"displayTimeUnit\":\"ms\"}\n"); err != nil {
		return fmt.Errorf("telemetry: writing %s: %w", path, err)
	}
	return nil
}

// WriteChromeTrace exports the tracer's event ring as Chrome trace-event
// JSON.
func (t *Tracer) WriteChromeTrace(path string) error {
	return WriteChromeTrace(path, t.TierNames(), t.Events())
}
