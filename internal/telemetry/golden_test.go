package telemetry

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"memca/internal/queueing"
	"memca/internal/sim"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

// checkGolden writes one artifact via write, then compares it
// byte-for-byte against testdata/<name>. The export formats are artifact
// contracts — same-seed runs promise byte-identical traces — so any diff
// here is a breaking change. Regenerate deliberately with:
// go test ./internal/telemetry -run Golden -update
func checkGolden(t *testing.T, name string, write func(path string) error) {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := write(path); err != nil {
		t.Fatalf("writing %s: %v", name, err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading %s back: %v", name, err)
	}
	goldenPath := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("%s drifted from golden file:\ngot:\n%s\nwant:\n%s", name, got, want)
	}
}

// goldenScenario runs a small deterministic two-tier scenario that
// exercises every export surface: queueing, two-tier service, a drop
// followed by a retransmission, and a drop followed by abandonment.
func goldenScenario(t *testing.T) *Tracer {
	t.Helper()
	e := sim.NewEngine(1)
	spec := Spec{
		MaxActive:   64,
		EventRing:   1 << 10,
		TailKeep:    16,
		HeadEvery:   2,
		HeadKeep:    16,
		Resolutions: []time.Duration{50 * time.Millisecond},
		// One feature window per timeline resolution; the 50ms tail
		// threshold puts the retransmitted trace (rt 50ms: 40ms wait +
		// 10ms service), but not the directly served ones, in tail_over.
		FeatureWindows: []time.Duration{50 * time.Millisecond},
		TailOver:       50 * time.Millisecond,
	}
	tr, err := New(e, Config{
		Spec:      spec,
		Tiers:     2,
		TierNames: []string{"apache", "tomcat"},
		Seed:      1,
		Horizon:   400 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("telemetry.New: %v", err)
	}
	n, err := queueing.New(e, queueing.Config{
		Mode: queueing.ModeNTierRPC,
		Tiers: []queueing.TierConfig{
			{Name: "apache", QueueLimit: 2, Servers: 1, Service: sim.NewDeterministic(10 * time.Millisecond)},
			{Name: "tomcat", QueueLimit: queueing.Infinite, Servers: 1, Service: sim.NewDeterministic(20 * time.Millisecond)},
		},
		Classes: []queueing.Class{
			{Name: "static", Depth: 0},
			{Name: "servlet", Depth: 1},
		},
		Observer: tr,
	})
	if err != nil {
		t.Fatalf("queueing.New: %v", err)
	}
	// Trace 1: two-tier servlet, served immediately.
	if _, err := n.Submit(queueing.SubmitOpts{Class: 1}); err != nil {
		t.Fatal(err)
	}
	// Trace 2: static request that queues behind trace 1's front service.
	if _, err := n.Submit(queueing.SubmitOpts{Class: 0}); err != nil {
		t.Fatal(err)
	}
	// Trace 3: refused by the full front tier, retransmitted after 40ms.
	retransmit := func(req *queueing.Request) {
		id, attempt, first := req.TraceID, req.Attempt+1, req.FirstAttempt
		tr.RetransmitScheduled(id, attempt, e.Now()+40*time.Millisecond)
		e.Schedule(40*time.Millisecond, func() {
			if _, err := n.Submit(queueing.SubmitOpts{
				Class: 0, TraceID: id, Attempt: attempt, FirstAttempt: first,
			}); err != nil {
				t.Errorf("resubmit: %v", err)
			}
		})
	}
	if _, err := n.Submit(queueing.SubmitOpts{Class: 0, OnDrop: retransmit}); err != nil {
		t.Fatal(err)
	}
	// Trace 4: refused, client gives up 15ms later.
	abandon := func(req *queueing.Request) {
		id := req.TraceID
		e.Schedule(15*time.Millisecond, func() { tr.Abandon(id) })
	}
	if _, err := n.Submit(queueing.SubmitOpts{Class: 0, OnDrop: abandon}); err != nil {
		t.Fatal(err)
	}
	if err := e.RunAll(1000); err != nil {
		t.Fatal(err)
	}
	if tr.Closed() != 4 {
		t.Fatalf("scenario closed %d traces, want 4", tr.Closed())
	}
	return tr
}

func TestGoldenChromeTrace(t *testing.T) {
	tr := goldenScenario(t)
	checkGolden(t, "trace.json", func(path string) error {
		return tr.WriteChromeTrace(path)
	})
}

func TestGoldenAttributionCSV(t *testing.T) {
	tr := goldenScenario(t)
	checkGolden(t, "attribution.csv", func(path string) error {
		return WriteAttributionCSV(path, tr.TierNames(), tr.TailAttributions())
	})
}

func TestGoldenTimelineCSV(t *testing.T) {
	tr := goldenScenario(t)
	checkGolden(t, "timeline_50ms.csv", func(path string) error {
		return WriteTimelineCSV(path, tr.Timeline(50*time.Millisecond))
	})
}

func TestGoldenOTLP(t *testing.T) {
	tr := goldenScenario(t)
	checkGolden(t, "otlp.json", func(path string) error {
		return tr.WriteOTLP(path, DefaultOTLPSpec())
	})
}

func TestGoldenFeaturesCSV(t *testing.T) {
	tr := goldenScenario(t)
	checkGolden(t, "features_50ms.csv", func(path string) error {
		return WriteFeaturesCSV(path, tr.FeaturesAt(50*time.Millisecond))
	})
}

func TestGoldenFeaturesOTLP(t *testing.T) {
	tr := goldenScenario(t)
	checkGolden(t, "features_otlp.json", func(path string) error {
		return WriteFeaturesOTLP(path, DefaultOTLPSpec(), tr.FeaturesAt(50*time.Millisecond))
	})
}

func TestGoldenBreakdownCSV(t *testing.T) {
	tr := goldenScenario(t)
	names := tr.TierNames()
	b := Summarize(len(names), tr.TailAttributions())
	checkGolden(t, "breakdown.csv", func(path string) error {
		return WriteBreakdownCSV(path, names, []string{"scenario"}, []Breakdown{b})
	})
}
