package telemetry

import (
	"fmt"
	"time"
)

// TimelinePoint aggregates the traces that closed inside one window.
type TimelinePoint struct {
	// Count is the number of traces closed in the window.
	Count int
	// Drops sums the drop counts of those traces.
	Drops int
	// SumRT / MaxRT aggregate client response time.
	SumRT time.Duration
	MaxRT time.Duration
	// SumQueue / MaxQueue aggregate total per-trace queueing time.
	SumQueue time.Duration
	MaxQueue time.Duration
}

// MeanRT returns the window's mean client response time.
func (p TimelinePoint) MeanRT() time.Duration {
	if p.Count == 0 {
		return 0
	}
	return p.SumRT / time.Duration(p.Count)
}

// Timeline aggregates closed traces into fixed windows of one resolution.
// Two timelines at different resolutions make the paper's monitoring-
// blindness argument concrete: a transient RT spike that saturates a 50ms
// window averages away in a 1s window.
type Timeline struct {
	// Res is the window width.
	Res time.Duration

	base   time.Duration
	points []TimelinePoint
}

func newTimeline(res, horizon time.Duration) *Timeline {
	n := int(horizon/res) + 1
	return &Timeline{Res: res, points: make([]TimelinePoint, 0, n)}
}

// NewTimeline builds a standalone timeline covering [0, horizon] at the
// given resolution. The simulator's Tracer builds its own timelines; this
// constructor exists for offline assembly — the live collector books
// wall-clock attributions into the same structure so BlindnessRatio and
// the CSV export work identically on real runs.
func NewTimeline(res, horizon time.Duration) (*Timeline, error) {
	if res <= 0 {
		return nil, fmt.Errorf("telemetry: timeline resolution must be positive, got %v", res)
	}
	if horizon <= 0 {
		return nil, fmt.Errorf("telemetry: timeline horizon must be positive, got %v", horizon)
	}
	return newTimeline(res, horizon), nil
}

// Add books one closed trace into its window: end is the close time, rt
// the client response time, queue the trace's total queueing time, and
// drops its dropped-attempt count.
func (tl *Timeline) Add(end, rt, queue time.Duration, drops int) {
	tl.add(end, rt, queue, drops)
}

// reset clears the timeline and rebases window 0 at base.
func (tl *Timeline) reset(base time.Duration) {
	tl.base = base
	tl.points = tl.points[:0]
}

// add books one closed trace into its window. The timeline covers
// [base, base+horizon]; traces closing outside it (warmup remnants, the
// post-run drain phase) are dropped — folding the drain's late
// retransmission tails into the last window would distort it identically
// at every resolution.
func (tl *Timeline) add(end, rt, queue time.Duration, drops int) {
	if end < tl.base {
		return
	}
	idx := int((end - tl.base) / tl.Res)
	if idx >= cap(tl.points) {
		return
	}
	for len(tl.points) <= idx {
		tl.points = tl.points[:len(tl.points)+1]
		tl.points[len(tl.points)-1] = TimelinePoint{}
	}
	p := &tl.points[idx]
	p.Count++
	p.Drops += drops
	p.SumRT += rt
	if rt > p.MaxRT {
		p.MaxRT = rt
	}
	p.SumQueue += queue
	if queue > p.MaxQueue {
		p.MaxQueue = queue
	}
}

// Base returns the virtual time of window 0's left edge.
func (tl *Timeline) Base() time.Duration { return tl.base }

// Points returns the window aggregates (shared; do not mutate).
func (tl *Timeline) Points() []TimelinePoint { return tl.points }

// WindowStart returns the left edge of window i.
func (tl *Timeline) WindowStart(i int) time.Duration {
	return tl.base + time.Duration(i)*tl.Res
}

// PeakMeanRT returns the largest window-mean response time.
func (tl *Timeline) PeakMeanRT() time.Duration {
	m, _ := tl.peakMeanRT()
	return m
}

// peakMeanRT returns the largest window-mean response time and its window
// index (-1 when the timeline is empty).
func (tl *Timeline) peakMeanRT() (time.Duration, int) {
	var peak time.Duration
	idx := -1
	for i, p := range tl.points {
		if m := p.MeanRT(); m > peak {
			peak = m
			idx = i
		}
	}
	return peak, idx
}

// BlindnessRatio quantifies monitoring blindness: the peak window-mean
// response time at the fine resolution, divided by what the coarse
// monitor reports for the window covering that same instant. A transient
// millibottleneck yields a ratio well above 1 — the spike the fine
// monitor resolves is averaged into a full coarse window of ordinary
// traffic. Returns 0 when either view has no traffic at that instant.
func BlindnessRatio(fine, coarse *Timeline) float64 {
	fp, fi := fine.peakMeanRT()
	if fi < 0 {
		return 0
	}
	at := fine.WindowStart(fi)
	ci := int((at - coarse.base) / coarse.Res)
	if ci < 0 || ci >= len(coarse.points) {
		return 0
	}
	cm := coarse.points[ci].MeanRT()
	if cm <= 0 {
		return 0
	}
	return float64(fp) / float64(cm)
}
