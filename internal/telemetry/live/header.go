package live

// TraceHeader is the HTTP header carrying trace context through the live
// tier chain: "<traceID>.<attempt>", both decimal. A trace ID is minted by
// the instrumented client and forwarded unchanged on every hop, so one
// logical request keeps one ID across tiers and retransmissions; requests
// arriving without the header are served but not traced.
const TraceHeader = "X-Memca-Trace"

// FormatTraceHeader renders trace context into the wire form.
// Allocation-free for IDs/attempts in the int64 range of a demo run is not
// required here — this runs only on the traced path.
func FormatTraceHeader(traceID uint64, attempt int) string {
	buf := make([]byte, 0, 24)
	buf = appendUint(buf, traceID)
	buf = append(buf, '.')
	buf = appendUint(buf, uint64(attempt))
	return string(buf)
}

// ParseTraceHeader decodes the wire form. ok is false (and both values
// zero) for an empty or malformed header — the tier then serves the
// request untraced. The parse is allocation-free so an instrumented
// tier's hot path stays clean.
func ParseTraceHeader(v string) (traceID uint64, attempt int, ok bool) {
	if v == "" {
		return 0, 0, false
	}
	dot := -1
	for i := 0; i < len(v); i++ {
		if v[i] == '.' {
			dot = i
			break
		}
	}
	if dot <= 0 || dot == len(v)-1 {
		return 0, 0, false
	}
	id, ok := parseUint(v[:dot])
	if !ok || id == 0 {
		return 0, 0, false
	}
	at, ok := parseUint(v[dot+1:])
	if !ok || at > 1<<16-1 {
		return 0, 0, false
	}
	return id, int(at), true
}

func appendUint(buf []byte, x uint64) []byte {
	var tmp [20]byte
	i := len(tmp)
	for {
		i--
		tmp[i] = byte('0' + x%10)
		x /= 10
		if x == 0 {
			break
		}
	}
	return append(buf, tmp[i:]...)
}

func parseUint(s string) (uint64, bool) {
	if s == "" || len(s) > 20 {
		return 0, false
	}
	var x uint64
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		d := uint64(c - '0')
		if x > (1<<64-1-d)/10 {
			return 0, false
		}
		x = x*10 + d
	}
	return x, true
}
