package live

import (
	"sort"
	"time"

	"memca/internal/telemetry"
)

// Report is the assembled view of one live run: the time-ordered event
// log plus per-trace critical-path attributions in the simulator's record
// types, ready for the shared exporters.
type Report struct {
	// TierNames labels the tiers, index-aligned with event tier ids.
	TierNames []string
	// Events is the (T, Seq)-ordered span-event log.
	Events []telemetry.SpanEvent
	// Attributions holds one record per closed trace (completed or
	// abandoned), ordered by (Start, TraceID).
	Attributions []telemetry.Attribution
	// Open counts traces that never closed (no complete/abandon event) —
	// requests still in flight at snapshot time.
	Open int
	// Orphans counts unclosed tier spans (a service-start without its
	// service-end, a tier-request without service-start or drop) inside
	// closed traces. Non-zero means a tier's instrumentation leaked a
	// span.
	Orphans int
	// DroppedEvents is the collector's discarded-event count; attribution
	// over a truncated log undercounts, so treat non-zero as a sizing
	// error.
	DroppedEvents uint64
}

// traceBuild accumulates one trace's assembly state during the event walk.
type traceBuild struct {
	start     time.Duration
	end       time.Duration
	started   bool
	ended     bool
	abandoned bool
	attempts  int
	drops     int

	queue    []time.Duration
	service  []time.Duration
	reqAt    []time.Duration
	svcAt    []time.Duration
	lastFail time.Duration

	retransWait time.Duration
	order       int
}

// Report assembles the collector's events into per-trace attributions.
// Call it after recording quiesces.
func (c *Collector) Report() Report {
	events := c.Events()
	tiers := len(c.tierNames)
	builds := make(map[uint64]*traceBuild)
	order := 0
	get := func(id uint64, t time.Duration) *traceBuild {
		b, ok := builds[id]
		if !ok {
			b = &traceBuild{
				start:    t,
				queue:    make([]time.Duration, tiers),
				service:  make([]time.Duration, tiers),
				reqAt:    make([]time.Duration, tiers),
				svcAt:    make([]time.Duration, tiers),
				lastFail: -1,
				order:    order,
			}
			for i := 0; i < tiers; i++ {
				b.reqAt[i] = -1
				b.svcAt[i] = -1
			}
			order++
			builds[id] = b
		}
		return b
	}

	for i := range events {
		e := &events[i]
		tier := int(e.Tier)
		tierOK := tier >= 0 && tier < tiers
		switch e.Kind {
		case KindSubmit:
			b := get(e.TraceID, e.T)
			b.attempts++
			if e.Attempt == 0 {
				b.start = e.T
				b.started = true
			} else if b.lastFail >= 0 {
				// Retransmission wait: the span between the failed
				// attempt's drop (or the client noticing the failure)
				// and this resubmission — the live analogue of the
				// simulator's drop→resubmit attribution.
				b.retransWait += e.T - b.lastFail
				b.lastFail = -1
			}
		case KindTierRequest:
			if b := get(e.TraceID, e.T); tierOK {
				b.reqAt[tier] = e.T
			}
		case KindServiceStart:
			if b := get(e.TraceID, e.T); tierOK {
				if b.reqAt[tier] >= 0 {
					b.queue[tier] += e.T - b.reqAt[tier]
					b.reqAt[tier] = -1
				}
				b.svcAt[tier] = e.T
			}
		case KindServiceEnd:
			if b := get(e.TraceID, e.T); tierOK {
				if b.svcAt[tier] >= 0 {
					b.service[tier] += e.T - b.svcAt[tier]
					b.svcAt[tier] = -1
				}
			}
		case KindDrop:
			b := get(e.TraceID, e.T)
			b.drops++
			b.lastFail = e.T
			if tierOK {
				// The refusing tier's queue-enter must not leak into the
				// next attempt's queueing time.
				b.reqAt[tier] = -1
			}
		case KindRetransmitScheduled:
			b := get(e.TraceID, e.T)
			if b.lastFail < 0 {
				// No tier recorded a drop (e.g. a transport error): anchor
				// the wait at the client's failure observation instead.
				b.lastFail = e.T
			}
		case KindComplete:
			b := get(e.TraceID, e.T)
			b.end = e.T
			b.ended = true
		case KindAbandoned:
			b := get(e.TraceID, e.T)
			b.end = e.T
			b.ended = true
			b.abandoned = true
		}
	}

	rep := Report{
		TierNames:     c.tierNames,
		Events:        events,
		DroppedEvents: c.EventsDropped(),
	}
	ids := make([]uint64, 0, len(builds))
	for id := range builds {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return builds[ids[i]].order < builds[ids[j]].order })
	for _, id := range ids {
		b := builds[id]
		if !b.ended {
			rep.Open++
			continue
		}
		var totalQ, totalS time.Duration
		for i := 0; i < tiers; i++ {
			totalQ += b.queue[i]
			totalS += b.service[i]
			if b.reqAt[i] >= 0 || b.svcAt[i] >= 0 {
				rep.Orphans++
			}
		}
		rt := b.end - b.start
		rep.Attributions = append(rep.Attributions, telemetry.Attribution{
			TraceID:     id,
			Start:       b.start,
			End:         b.end,
			RT:          rt,
			Attempts:    b.attempts,
			Drops:       b.drops,
			Abandoned:   b.abandoned,
			Queue:       b.queue,
			Service:     b.service,
			RetransWait: b.retransWait,
			Other:       rt - totalQ - totalS - b.retransWait,
		})
	}
	sort.Slice(rep.Attributions, func(i, j int) bool {
		a, b := &rep.Attributions[i], &rep.Attributions[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		return a.TraceID < b.TraceID
	})
	return rep
}

// Timelines books every attribution into one timeline per resolution
// (covering [0, last close]), the structure the blindness analysis and
// the timeline CSV exporter consume.
func (r *Report) Timelines(resolutions ...time.Duration) ([]*telemetry.Timeline, error) {
	horizon := time.Duration(0)
	for i := range r.Attributions {
		if end := r.Attributions[i].End; end > horizon {
			horizon = end
		}
	}
	if horizon == 0 {
		horizon = time.Second
	}
	out := make([]*telemetry.Timeline, 0, len(resolutions))
	for _, res := range resolutions {
		tl, err := telemetry.NewTimeline(res, horizon)
		if err != nil {
			return nil, err
		}
		for i := range r.Attributions {
			a := &r.Attributions[i]
			tl.Add(a.End, a.RT, a.TotalQueue(), a.Drops)
		}
		out = append(out, tl)
	}
	return out, nil
}

// Features books every attribution into a per-window feature series at
// the given resolution (covering [0, last close]) — the same detection
// features the simulator's tracer streams, extracted from a live run.
// tailOver sets the series' tail-count threshold (0 disables it).
func (r *Report) Features(res, tailOver time.Duration) (*telemetry.FeatureSeries, error) {
	horizon := time.Duration(0)
	for i := range r.Attributions {
		if end := r.Attributions[i].End; end > horizon {
			horizon = end
		}
	}
	if horizon == 0 {
		horizon = time.Second
	}
	fs, err := telemetry.NewFeatureSeries(res, horizon, tailOver)
	if err != nil {
		return nil, err
	}
	for i := range r.Attributions {
		a := &r.Attributions[i]
		fs.Add(a.End, a.RT, a.TotalQueue(), a.TotalService(), a.RetransWait, a.Attempts, a.Drops)
	}
	return fs, nil
}

// TailOver returns the attributions with RT >= threshold — the records an
// aggregate monitor would need to explain but cannot.
func (r *Report) TailOver(threshold time.Duration) []telemetry.Attribution {
	var out []telemetry.Attribution
	for i := range r.Attributions {
		if r.Attributions[i].RT >= threshold {
			out = append(out, r.Attributions[i])
		}
	}
	return out
}

// PercentileRT returns the pct-th percentile (0-100, nearest-rank on the
// sorted set) of closed-trace response times, or 0 with no traces.
func (r *Report) PercentileRT(pct float64) time.Duration {
	if len(r.Attributions) == 0 {
		return 0
	}
	rts := make([]time.Duration, len(r.Attributions))
	for i := range r.Attributions {
		rts[i] = r.Attributions[i].RT
	}
	sort.Slice(rts, func(i, j int) bool { return rts[i] < rts[j] })
	idx := int(pct / 100 * float64(len(rts)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(rts) {
		idx = len(rts) - 1
	}
	return rts[idx]
}
