package live

import (
	"path/filepath"
	"sync"
	"testing"
	"time"

	"memca/internal/telemetry"
)

func newTestCollector(t *testing.T, events int) *Collector {
	t.Helper()
	c, err := New(Config{Tiers: []string{"web", "app", "db"}, Events: events})
	if err != nil {
		t.Fatalf("live.New: %v", err)
	}
	return c
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Tiers: []string{"web"}, Events: 0}); err == nil {
		t.Error("zero event capacity accepted")
	}
	if _, err := New(Config{Tiers: []string{""}, Events: 16}); err == nil {
		t.Error("empty tier name accepted")
	}
	if _, err := New(Config{Events: 16}); err != nil {
		t.Errorf("tierless collector rejected: %v", err)
	}
}

// TestAssembleAttribution drives one synthetic trace through the full
// 3-tier vocabulary with hand-placed timestamps and checks the assembled
// attribution decomposes the response time exactly: per-tier queue and
// service, retransmission wait anchored at the drop, and the residual.
func TestAssembleAttribution(t *testing.T) {
	c := newTestCollector(t, 1<<10)
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	id := c.NextTraceID()

	// Attempt 0: refused at the db tier.
	c.RecordAt(ms(0), id, KindSubmit, ClientTier, 0, 0)
	c.RecordAt(ms(1), id, KindTierRequest, 0, 0, 0)
	c.RecordAt(ms(2), id, KindServiceStart, 0, 0, 0)
	c.RecordAt(ms(4), id, KindServiceEnd, 0, 0, 0)
	c.RecordAt(ms(5), id, KindTierRequest, 2, 0, 0)
	c.RecordAt(ms(5), id, KindDrop, 2, 0, 0)
	c.RecordAt(ms(7), id, KindRetransmitScheduled, ClientTier, 1, ms(25))
	// Attempt 1: served end to end.
	c.RecordAt(ms(25), id, KindSubmit, ClientTier, 1, 0)
	c.RecordAt(ms(26), id, KindTierRequest, 0, 1, 0)
	c.RecordAt(ms(28), id, KindServiceStart, 0, 1, 0)
	c.RecordAt(ms(30), id, KindServiceEnd, 0, 1, 0)
	c.RecordAt(ms(31), id, KindTierRequest, 2, 1, 0)
	c.RecordAt(ms(34), id, KindServiceStart, 2, 1, 0)
	c.RecordAt(ms(40), id, KindServiceEnd, 2, 1, 0)
	c.RecordAt(ms(41), id, KindTierRespond, 2, 1, 0)
	c.RecordAt(ms(42), id, KindComplete, ClientTier, 1, 0)

	rep := c.Report()
	if rep.Open != 0 || rep.Orphans != 0 || rep.DroppedEvents != 0 {
		t.Fatalf("open=%d orphans=%d dropped=%d, want all zero", rep.Open, rep.Orphans, rep.DroppedEvents)
	}
	if len(rep.Attributions) != 1 {
		t.Fatalf("got %d attributions, want 1", len(rep.Attributions))
	}
	a := rep.Attributions[0]
	if a.TraceID != id || a.Attempts != 2 || a.Drops != 1 || a.Abandoned {
		t.Errorf("identity: %+v", a)
	}
	if a.RT != ms(42) {
		t.Errorf("RT = %v, want 42ms", a.RT)
	}
	// Web queue: (2-1) + (28-26) = 3ms; web service: (4-2) + (30-28) = 4ms.
	if a.Queue[0] != ms(3) || a.Service[0] != ms(4) {
		t.Errorf("web queue/service = %v/%v, want 3ms/4ms", a.Queue[0], a.Service[0])
	}
	// Db queue: 34-31 (attempt 0's request cleared by the drop); service 6ms.
	if a.Queue[2] != ms(3) || a.Service[2] != ms(6) {
		t.Errorf("db queue/service = %v/%v, want 3ms/6ms", a.Queue[2], a.Service[2])
	}
	// Retransmission wait anchors at the drop (5ms), not the client's
	// scheduling instant: 25-5 = 20ms.
	if a.RetransWait != ms(20) {
		t.Errorf("retransWait = %v, want 20ms", a.RetransWait)
	}
	want := a.RT - (a.TotalQueue() + a.TotalService() + a.RetransWait)
	if a.Other != want {
		t.Errorf("Other = %v, want %v (exact decomposition)", a.Other, want)
	}
}

// TestAssembleAbandonAndOpen checks that an abandoned trace closes with
// its flag set, an unterminated trace is counted open, and a transport
// failure without a tier drop anchors the retransmission wait at the
// client's scheduling event.
func TestAssembleAbandonAndOpen(t *testing.T) {
	c := newTestCollector(t, 1<<10)
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }

	// Abandoned after a web-tier reject.
	a1 := c.NextTraceID()
	c.RecordAt(ms(0), a1, KindSubmit, ClientTier, 0, 0)
	c.RecordAt(ms(1), a1, KindTierRequest, 0, 0, 0)
	c.RecordAt(ms(1), a1, KindDrop, 0, 0, 0)
	c.RecordAt(ms(3), a1, KindAbandoned, ClientTier, 0, 0)

	// Transport failure (no drop recorded anywhere), then success.
	a2 := c.NextTraceID()
	c.RecordAt(ms(0), a2, KindSubmit, ClientTier, 0, 0)
	c.RecordAt(ms(2), a2, KindRetransmitScheduled, ClientTier, 1, ms(10))
	c.RecordAt(ms(10), a2, KindSubmit, ClientTier, 1, 0)
	c.RecordAt(ms(12), a2, KindComplete, ClientTier, 1, 0)

	// Still in flight at snapshot time.
	a3 := c.NextTraceID()
	c.RecordAt(ms(5), a3, KindSubmit, ClientTier, 0, 0)
	c.RecordAt(ms(6), a3, KindTierRequest, 0, 0, 0)

	rep := c.Report()
	if rep.Open != 1 {
		t.Errorf("open = %d, want 1", rep.Open)
	}
	if len(rep.Attributions) != 2 {
		t.Fatalf("attributions = %d, want 2", len(rep.Attributions))
	}
	byID := map[uint64]telemetry.Attribution{}
	for _, a := range rep.Attributions {
		byID[a.TraceID] = a
	}
	if got := byID[a1]; !got.Abandoned || got.Drops != 1 || got.RT != ms(3) {
		t.Errorf("abandoned trace: %+v", got)
	}
	if got := byID[a2]; got.RetransWait != ms(8) {
		t.Errorf("transport-failure retransWait = %v, want 8ms (anchored at scheduling)", got.RetransWait)
	}
}

// TestOrphanDetection: a service-start without service-end inside a closed
// trace must be reported, it is an instrumentation leak.
func TestOrphanDetection(t *testing.T) {
	c := newTestCollector(t, 64)
	id := c.NextTraceID()
	c.RecordAt(0, id, KindSubmit, ClientTier, 0, 0)
	c.RecordAt(time.Millisecond, id, KindServiceStart, 1, 0, 0)
	c.RecordAt(2*time.Millisecond, id, KindComplete, ClientTier, 0, 0)
	if rep := c.Report(); rep.Orphans != 1 {
		t.Errorf("orphans = %d, want 1", rep.Orphans)
	}
}

func TestEventCapacityDropsNotOverwrites(t *testing.T) {
	c := newTestCollector(t, 4)
	id := c.NextTraceID()
	for i := 0; i < 10; i++ {
		c.RecordAt(time.Duration(i), id, KindSubmit, ClientTier, 0, 0)
	}
	if got := c.EventsDropped(); got != 6 {
		t.Errorf("dropped = %d, want 6", got)
	}
	if got := len(c.Events()); got != 4 {
		t.Errorf("kept = %d, want 4", got)
	}
	// The first four events survive untouched — claim-once, no laps.
	for i, e := range c.Events() {
		if e.T != time.Duration(i) {
			t.Errorf("event %d at %v, want %v", i, e.T, time.Duration(i))
		}
	}
}

// TestConcurrentRecording hammers the collector from many goroutines under
// the race detector and checks nothing tears: every published event is
// intact and trace IDs are unique.
func TestConcurrentRecording(t *testing.T) {
	c := newTestCollector(t, 1<<14)
	const workers, perWorker = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				id := c.NextTraceID()
				c.Record(id, KindSubmit, ClientTier, 0, 0)
				c.Record(id, KindTierRequest, 0, 0, 0)
				c.Record(id, KindServiceStart, 0, 0, 0)
				c.Record(id, KindServiceEnd, 0, 0, 0)
				c.Record(id, KindComplete, ClientTier, 0, 0)
			}
		}()
	}
	wg.Wait()
	rep := c.Report()
	if want := workers * perWorker; len(rep.Attributions) != want {
		t.Errorf("closed traces = %d, want %d", len(rep.Attributions), want)
	}
	if rep.Open != 0 || rep.Orphans != 0 || rep.DroppedEvents != 0 {
		t.Errorf("open=%d orphans=%d dropped=%d", rep.Open, rep.Orphans, rep.DroppedEvents)
	}
	seen := map[uint64]bool{}
	for _, a := range rep.Attributions {
		if seen[a.TraceID] {
			t.Fatalf("trace ID %d assembled twice", a.TraceID)
		}
		seen[a.TraceID] = true
	}
}

// TestLiveEventsFeedSharedExporters: the assembled report must flow
// through the simulator's exporters unchanged.
func TestLiveEventsFeedSharedExporters(t *testing.T) {
	c := newTestCollector(t, 1<<10)
	id := c.NextTraceID()
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	c.RecordAt(ms(0), id, KindSubmit, ClientTier, 0, 0)
	c.RecordAt(ms(1), id, KindTierRequest, 0, 0, 0)
	c.RecordAt(ms(2), id, KindServiceStart, 0, 0, 0)
	c.RecordAt(ms(3), id, KindServiceEnd, 0, 0, 0)
	c.RecordAt(ms(4), id, KindComplete, ClientTier, 0, 0)
	rep := c.Report()

	dir := t.TempDir()
	if err := telemetry.WriteChromeTrace(filepath.Join(dir, "t.json"), rep.TierNames, rep.Events); err != nil {
		t.Errorf("WriteChromeTrace over live events: %v", err)
	}
	spec := telemetry.OTLPSpec{ServicePrefix: "live", EpochNanos: c.Epoch().UnixNano()}
	if err := telemetry.WriteOTLP(filepath.Join(dir, "o.json"), spec, rep.TierNames, rep.Events); err != nil {
		t.Errorf("WriteOTLP over live events: %v", err)
	}
	if err := telemetry.WriteAttributionCSV(filepath.Join(dir, "a.csv"), rep.TierNames, rep.Attributions); err != nil {
		t.Errorf("WriteAttributionCSV over live attributions: %v", err)
	}
	tls, err := rep.Timelines(50*time.Millisecond, time.Second)
	if err != nil {
		t.Fatalf("Timelines: %v", err)
	}
	if len(tls) != 2 || tls[0].Points()[0].Count != 1 {
		t.Errorf("timeline booking failed: %+v", tls)
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	cases := []struct {
		id      uint64
		attempt int
	}{{1, 0}, {42, 3}, {1<<64 - 1, 65535}}
	for _, tc := range cases {
		id, at, ok := ParseTraceHeader(FormatTraceHeader(tc.id, tc.attempt))
		if !ok || id != tc.id || at != tc.attempt {
			t.Errorf("round trip (%d,%d) -> (%d,%d,%v)", tc.id, tc.attempt, id, at, ok)
		}
	}
	for _, bad := range []string{"", ".", "5.", ".5", "abc", "5.x", "0.1", "5", "99999999999999999999999.1", "7.70000"} {
		if _, _, ok := ParseTraceHeader(bad); ok {
			t.Errorf("malformed header %q accepted", bad)
		}
	}
}

// TestRecordZeroAllocs pins the hot-path contract: recording a span event
// into the pre-sized log performs no heap allocations, and neither does
// parsing trace context out of a header value.
func TestRecordZeroAllocs(t *testing.T) {
	c := newTestCollector(t, 1<<20)
	id := c.NextTraceID()
	if allocs := testing.AllocsPerRun(10000, func() {
		c.Record(id, KindTierRequest, 0, 0, 0)
	}); allocs != 0 {
		t.Errorf("Record allocates %v objects/op, want 0", allocs)
	}
	h := FormatTraceHeader(123456, 2)
	if allocs := testing.AllocsPerRun(10000, func() {
		if _, _, ok := ParseTraceHeader(h); !ok {
			t.Fatal("parse failed")
		}
	}); allocs != 0 {
		t.Errorf("ParseTraceHeader allocates %v objects/op, want 0", allocs)
	}
}

func BenchmarkRecord(b *testing.B) {
	c, err := New(Config{Tiers: []string{"web", "app", "db"}, Events: 1 << 24})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Record(uint64(i)+1, KindTierRequest, 0, 0, 0)
	}
}
