package live

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"time"
)

// ClientConfig parameterizes an instrumented HTTP client.
type ClientConfig struct {
	// Collector receives the client-side span events.
	Collector *Collector
	// HTTP is the underlying client; nil uses a 5-second-timeout default.
	HTTP *http.Client
	// MaxAttempts bounds submissions per logical request, counting the
	// first (default 1: no retransmission).
	MaxAttempts int
	// Backoff is the base retransmission delay; attempt n waits
	// Backoff << (n-1), the binary exponential backoff of the paper's
	// RTO-driven client model. Default 50ms.
	Backoff time.Duration
}

// Client issues HTTP requests with full client-side trace instrumentation:
// it mints the trace ID, injects the trace header, records submit/complete
// events, and on a failed attempt schedules a retransmission of the same
// trace ID with exponential backoff — the live mirror of the workload
// generator's TraceHook lifecycle.
type Client struct {
	col         *Collector
	http        *http.Client
	maxAttempts int
	backoff     time.Duration
}

// NewClient validates the configuration and builds a client.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.Collector == nil {
		return nil, fmt.Errorf("live: client needs a collector")
	}
	if cfg.MaxAttempts < 0 {
		return nil, fmt.Errorf("live: MaxAttempts must be >= 0, got %d", cfg.MaxAttempts)
	}
	if cfg.Backoff < 0 {
		return nil, fmt.Errorf("live: Backoff must be >= 0, got %v", cfg.Backoff)
	}
	c := &Client{
		col:         cfg.Collector,
		http:        cfg.HTTP,
		maxAttempts: cfg.MaxAttempts,
		backoff:     cfg.Backoff,
	}
	if c.http == nil {
		c.http = &http.Client{Timeout: 5 * time.Second}
	}
	if c.maxAttempts == 0 {
		c.maxAttempts = 1
	}
	if c.backoff == 0 {
		c.backoff = 50 * time.Millisecond
	}
	return c, nil
}

// Result is the outcome of one logical traced request.
type Result struct {
	// TraceID identifies the request across all attempts.
	TraceID uint64
	// Status is the final HTTP status (0 on transport error).
	Status int
	// RT is the client response time across all attempts, including
	// retransmission waits.
	RT time.Duration
	// Attempts counts submissions.
	Attempts int
	// OK reports a 200 on some attempt.
	OK bool
	// Err is the last transport error, or nil.
	Err error
}

// Get issues one logical GET: attempts with the same trace ID until one
// succeeds, the attempt budget is spent, or ctx ends. A trace always
// closes: with a complete event on success, an abandoned event otherwise.
func (c *Client) Get(ctx context.Context, url string) Result {
	id := c.col.NextTraceID()
	start := c.col.Now()
	res := Result{TraceID: id}
	for attempt := 0; ; attempt++ {
		res.Attempts = attempt + 1
		c.col.Record(id, KindSubmit, ClientTier, attempt, 0)
		status, err := c.do(ctx, url, id, attempt)
		res.Status, res.Err = status, err
		if err == nil && status == http.StatusOK {
			c.col.Record(id, KindComplete, ClientTier, attempt, 0)
			res.OK = true
			res.RT = c.col.Now() - start
			return res
		}
		if attempt+1 >= c.maxAttempts || ctx.Err() != nil {
			c.col.Record(id, KindAbandoned, ClientTier, attempt, 0)
			res.RT = c.col.Now() - start
			return res
		}
		wait := c.backoff << uint(attempt)
		c.col.Record(id, KindRetransmitScheduled, ClientTier, attempt+1, c.col.Now()+wait)
		select {
		case <-ctx.Done():
			c.col.Record(id, KindAbandoned, ClientTier, attempt, 0)
			res.RT = c.col.Now() - start
			return res
		case <-time.After(wait):
		}
	}
}

func (c *Client) do(ctx context.Context, url string, id uint64, attempt int) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, err
	}
	req.Header.Set(TraceHeader, FormatTraceHeader(id, attempt))
	resp, err := c.http.Do(req)
	if err != nil {
		return 0, err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	if cerr := resp.Body.Close(); cerr != nil {
		return resp.StatusCode, cerr
	}
	return resp.StatusCode, nil
}
