package live

import (
	"testing"
	"time"

	"memca/internal/telemetry"
)

func TestWindowTrackerValidation(t *testing.T) {
	if _, err := NewWindowTracker(0, 0); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := NewWindowTracker(time.Second, -1); err == nil {
		t.Error("negative tail threshold accepted")
	}
}

func TestWindowTrackerRotation(t *testing.T) {
	w, err := NewWindowTracker(time.Second, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	epoch := time.Unix(1000, 0)

	// Nothing completed before the first boundary.
	w.Observe(epoch, 50*time.Millisecond, 10*time.Millisecond, 40*time.Millisecond, 0, 1, 0)
	w.Observe(epoch.Add(400*time.Millisecond), 200*time.Millisecond, 150*time.Millisecond, 50*time.Millisecond, 0, 2, 1)
	if _, _, ok := w.Last(epoch.Add(900 * time.Millisecond)); ok {
		t.Fatal("window reported complete before its boundary")
	}

	// Crossing the boundary promotes the filled window.
	feat, start, ok := w.Last(epoch.Add(1100 * time.Millisecond))
	if !ok {
		t.Fatal("no completed window after the boundary")
	}
	if start != 0 {
		t.Errorf("window start = %v, want 0", start)
	}
	if feat.Count != 2 || feat.Attempts != 3 || feat.Drops != 1 || feat.TailOver != 1 {
		t.Errorf("window = %+v, want Count 2 Attempts 3 Drops 1 TailOver 1", feat)
	}
	if feat.SumRT != 250*time.Millisecond || feat.SumQueue != 160*time.Millisecond {
		t.Errorf("window sums = %+v", feat)
	}

	// An observation in a later window also rotates.
	w.Observe(epoch.Add(1500*time.Millisecond), 10*time.Millisecond, 0, 10*time.Millisecond, 0, 1, 0)
	w.Observe(epoch.Add(2200*time.Millisecond), 20*time.Millisecond, 0, 20*time.Millisecond, 0, 1, 0)
	feat, start, ok = w.Last(epoch.Add(2300 * time.Millisecond))
	if !ok || start != time.Second || feat.Count != 1 || feat.SumRT != 10*time.Millisecond {
		t.Errorf("second window = %+v at %v (ok %v), want Count 1 SumRT 10ms at 1s", feat, start, ok)
	}

	// Idling across several windows completes an empty one.
	feat, start, ok = w.Last(epoch.Add(5500 * time.Millisecond))
	if !ok || start != 4*time.Second || feat.Count != 0 {
		t.Errorf("idle window = %+v at %v (ok %v), want empty at 4s", feat, start, ok)
	}
}

func TestReportFeatures(t *testing.T) {
	rep := Report{Attributions: []telemetry.Attribution{
		{
			TraceID: 1, Start: 0, End: 30 * time.Millisecond, RT: 30 * time.Millisecond,
			Attempts: 1, Queue: []time.Duration{10 * time.Millisecond},
			Service: []time.Duration{20 * time.Millisecond},
		},
		{
			TraceID: 2, Start: 0, End: 1200 * time.Millisecond, RT: 1200 * time.Millisecond,
			Attempts: 2, Drops: 1, Queue: []time.Duration{100 * time.Millisecond},
			Service: []time.Duration{100 * time.Millisecond}, RetransWait: time.Second,
		},
	}}
	fs, err := rep.Features(time.Second, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	wins := fs.Windows()
	if len(wins) != 2 {
		t.Fatalf("got %d windows, want 2", len(wins))
	}
	if wins[0].Count != 1 || wins[0].SumRT != 30*time.Millisecond {
		t.Errorf("window 0 = %+v", wins[0])
	}
	w1 := wins[1]
	if w1.Count != 1 || w1.Drops != 1 || w1.TailOver != 1 || w1.SumRetransWait != time.Second {
		t.Errorf("window 1 = %+v", w1)
	}
	if share := w1.RetransShare(); share < 0.83 || share > 0.84 {
		t.Errorf("retrans share = %v, want 1000/1200", share)
	}

	// Empty reports still produce a (one-window) series.
	empty := Report{}
	fs, err = empty.Features(time.Second, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs.Windows()) != 0 {
		t.Errorf("empty report produced %d windows", len(fs.Windows()))
	}
}
