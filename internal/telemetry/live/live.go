// Package live collects wall-clock causal spans from the real-socket
// 3-tier path (internal/victimd, the memcafw probes, the demo load
// generator) using the exact span vocabulary of the simulator's
// queueing.Observer, and assembles them into the internal/telemetry record
// types — so WriteChromeTrace, WriteOTLP, attribution CSVs, timelines, and
// BlindnessRatio work unchanged whether the events came from virtual or
// wall-clock time.
//
// The Collector mirrors the simulator tracer's discipline translated to a
// concurrent world: storage is pre-sized at construction and the recording
// hot path is lock-free — one atomic fetch-add to claim a slot, a plain
// struct write, and one atomic release store; no locks, no maps, no
// allocations. Unlike the simulator's overwrite-oldest ring (safe there
// because the engine is single-goroutine), concurrent writers must never
// lap each other, so the live event log is claim-once: events beyond the
// capacity are counted as dropped instead of overwriting live slots.
// Assembly (grouping events into per-trace attributions) happens only at
// export time, after the servers quiesce.
package live

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"memca/internal/queueing"
	"memca/internal/telemetry"
)

// Event kinds re-exported so clock-side packages (victimd, memcafw, cmd/)
// record spans in the simulator's 11-point vocabulary without importing
// the queueing package themselves.
const (
	KindSubmit       = telemetry.EventKind(queueing.SpanSubmit)
	KindTierRequest  = telemetry.EventKind(queueing.SpanTierRequest)
	KindServiceStart = telemetry.EventKind(queueing.SpanServiceStart)
	KindServiceEnd   = telemetry.EventKind(queueing.SpanServiceEnd)
	KindTierRespond  = telemetry.EventKind(queueing.SpanTierRespond)
	KindDrop         = telemetry.EventKind(queueing.SpanDrop)
	KindComplete     = telemetry.EventKind(queueing.SpanComplete)

	KindRetransmitScheduled = telemetry.EvRetransmitScheduled
	KindAbandoned           = telemetry.EvAbandoned
)

// ClientTier is the tier index of client-side events (submit, complete,
// retransmission scheduling, abandonment), mirroring the simulator.
const ClientTier = -1

// Config sizes a Collector.
type Config struct {
	// Tiers names the instrumented tiers; a tier's index in this slice is
	// its tier id in every recorded event. Empty is allowed (client-only
	// collectors, e.g. probe tracing).
	Tiers []string
	// Events is the pre-sized event-log capacity. Recording beyond it
	// drops events (counted) rather than overwriting — concurrent writers
	// must never lap each other.
	Events int
	// Epoch is wall-clock time zero for event timestamps; the zero value
	// means "now at New".
	Epoch time.Time
}

// Validate reports the first configuration error, or nil.
func (c Config) Validate() error {
	if c.Events <= 0 {
		return fmt.Errorf("live: event capacity must be positive, got %d", c.Events)
	}
	for i, name := range c.Tiers {
		if name == "" {
			return fmt.Errorf("live: tier %d name must not be empty", i)
		}
	}
	return nil
}

// Collector is the shared wall-clock span sink. All methods are safe for
// concurrent use; Events/Report should run after recording quiesces (an
// in-flight Record may still be filling its claimed slot — such slots are
// skipped, not torn).
type Collector struct {
	tierNames []string
	epoch     time.Time

	cursor atomic.Uint64
	ready  []atomic.Uint32
	events []telemetry.SpanEvent

	nextTrace atomic.Uint64
}

// New builds a collector.
func New(cfg Config) (*Collector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	epoch := cfg.Epoch
	if epoch.IsZero() {
		epoch = time.Now()
	}
	names := make([]string, len(cfg.Tiers))
	copy(names, cfg.Tiers)
	return &Collector{
		tierNames: names,
		epoch:     epoch,
		ready:     make([]atomic.Uint32, cfg.Events),
		events:    make([]telemetry.SpanEvent, cfg.Events),
	}, nil
}

// TierNames returns the configured tier labels.
func (c *Collector) TierNames() []string { return c.tierNames }

// Epoch returns wall-clock time zero of the collector's timestamps.
func (c *Collector) Epoch() time.Time { return c.epoch }

// Now returns the current event timestamp (wall time since the epoch).
func (c *Collector) Now() time.Duration { return time.Since(c.epoch) }

// NextTraceID mints a fresh trace ID (never zero).
//
//memca:hotpath
func (c *Collector) NextTraceID() uint64 { return c.nextTrace.Add(1) }

// Record stamps the current time and appends one span event. Lock- and
// allocation-free: an atomic slot claim, a struct write, and a release
// store publishing the slot.
//
//memca:hotpath
func (c *Collector) Record(traceID uint64, kind telemetry.EventKind, tier, attempt int, aux time.Duration) {
	c.RecordAt(c.Now(), traceID, kind, tier, attempt, aux)
}

// RecordAt appends one span event with an explicit timestamp (wall time
// since the epoch), for callers that already stamped the instant.
//
//memca:hotpath
func (c *Collector) RecordAt(t time.Duration, traceID uint64, kind telemetry.EventKind, tier, attempt int, aux time.Duration) {
	seq := c.cursor.Add(1) - 1
	if seq >= uint64(len(c.events)) {
		return // capacity exhausted; counted by EventsDropped
	}
	e := &c.events[seq]
	e.T = t
	e.Seq = seq
	e.TraceID = traceID
	e.Aux = aux
	e.Kind = kind
	e.Tier = int8(tier)
	e.Attempt = uint16(attempt)
	c.ready[seq].Store(1)
}

// EventsDropped returns how many events were discarded because the
// pre-sized log filled up.
func (c *Collector) EventsDropped() uint64 {
	n := c.cursor.Load()
	if limit := uint64(len(c.events)); n > limit {
		return n - limit
	}
	return 0
}

// Events returns a snapshot of the recorded span events ordered by
// (T, Seq). Slots claimed by still-in-flight Record calls are skipped.
func (c *Collector) Events() []telemetry.SpanEvent {
	n := c.cursor.Load()
	if limit := uint64(len(c.events)); n > limit {
		n = limit
	}
	out := make([]telemetry.SpanEvent, 0, n)
	for i := uint64(0); i < n; i++ {
		if c.ready[i].Load() == 1 {
			out = append(out, c.events[i])
		}
	}
	// Wall-clock events from concurrent goroutines interleave out of
	// order; sort into the (time, sequence) total order every exporter
	// assumes.
	sort.Slice(out, func(i, j int) bool {
		if out[i].T != out[j].T {
			return out[i].T < out[j].T
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}
