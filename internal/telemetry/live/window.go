package live

import (
	"fmt"
	"sync"
	"time"

	"memca/internal/telemetry"
)

// WindowTracker maintains a rolling wall-clock feature window: the live,
// always-on analogue of the tracer's FeatureSeries. Observations land in
// the current window; when an observation (or a reader) crosses a window
// boundary, the filled window is promoted to "last completed" and a fresh
// one starts. A monitoring scraper therefore always reads one whole
// window's features — never a partially filled one.
//
// The tracker aggregates whatever its caller can observe. A single tier
// sees its own queue wait, service time, and sheds, but not the client's
// retransmission wait; the trace collector's Report.Features sees the
// full cross-tier attribution. Both book into the same WindowFeatures.
type WindowTracker struct {
	res  time.Duration
	tail time.Duration

	mu sync.Mutex
	// epoch anchors window 0; windows are indexed by (now - epoch) / res.
	epoch   time.Time
	started bool
	curIdx  int64
	cur     telemetry.WindowFeatures
	lastIdx int64
	last    telemetry.WindowFeatures
	hasLast bool
}

// NewWindowTracker builds a tracker with the given window width and
// tail-over threshold (0 disables the tail count).
func NewWindowTracker(res, tailOver time.Duration) (*WindowTracker, error) {
	if res <= 0 {
		return nil, fmt.Errorf("live: window width must be positive, got %v", res)
	}
	if tailOver < 0 {
		return nil, fmt.Errorf("live: tail-over threshold must be >= 0, got %v", tailOver)
	}
	return &WindowTracker{res: res, tail: tailOver}, nil
}

// Res returns the window width.
func (t *WindowTracker) Res() time.Duration { return t.res }

// rotate advances to now's window, promoting the current window to last
// if the boundary was crossed. Callers hold t.mu.
func (t *WindowTracker) rotate(now time.Time) {
	if !t.started {
		t.epoch = now
		t.started = true
		return
	}
	idx := int64(now.Sub(t.epoch) / t.res)
	if idx <= t.curIdx {
		return
	}
	// The most recently completed window is idx-1: the one being filled
	// when exactly one boundary passed, an empty one when the tracker
	// idled across several windows.
	t.last = t.cur
	t.lastIdx = t.curIdx
	if idx > t.curIdx+1 {
		t.last = telemetry.WindowFeatures{}
		t.lastIdx = idx - 1
	}
	t.hasLast = true
	t.cur = telemetry.WindowFeatures{}
	t.curIdx = idx
}

// Observe books one completed (or shed) request at wall-clock time now:
// rt is the observed response time, queue/service/retransWait the
// components the caller can attribute, attempts/drops its submit and
// rejection counts.
func (t *WindowTracker) Observe(now time.Time, rt, queue, service, retransWait time.Duration, attempts, drops int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rotate(now)
	t.cur.Observe(rt, queue, service, retransWait, attempts, drops, t.tail)
}

// Last returns the most recently completed window and its start offset
// from the tracker's epoch. The boolean is false until a first window has
// completed. Passing the current time lets a reader complete a window
// that has elapsed with no observations since.
func (t *WindowTracker) Last(now time.Time) (telemetry.WindowFeatures, time.Duration, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.started {
		t.rotate(now)
	}
	if !t.hasLast {
		return telemetry.WindowFeatures{}, 0, false
	}
	return t.last, time.Duration(t.lastIdx) * t.res, true
}
