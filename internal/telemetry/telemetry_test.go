package telemetry

import (
	"testing"
	"time"

	"memca/internal/queueing"
	"memca/internal/sim"
	"memca/internal/sweep"
)

// testSpec returns a small spec with timelines disabled.
func testSpec() Spec {
	return Spec{MaxActive: 64, EventRing: 4096, TailKeep: 16}
}

// buildTraced wires a tracer into a fresh network. tiers are
// (queueLimit, servers, deterministic service) triples applied in order.
func buildTraced(t *testing.T, e *sim.Engine, spec Spec, horizon time.Duration, tiers ...queueing.TierConfig) (*queueing.Network, *Tracer) {
	t.Helper()
	tr, err := New(e, Config{Spec: spec, Tiers: len(tiers), Seed: 1, Horizon: horizon})
	if err != nil {
		t.Fatalf("telemetry.New: %v", err)
	}
	classes := make([]queueing.Class, len(tiers))
	for i := range tiers {
		classes[i] = queueing.Class{Name: "depth", Depth: i}
	}
	n, err := queueing.New(e, queueing.Config{
		Mode:     queueing.ModeNTierRPC,
		Tiers:    tiers,
		Classes:  classes,
		Observer: tr,
	})
	if err != nil {
		t.Fatalf("queueing.New: %v", err)
	}
	return n, tr
}

func detTier(name string, q, servers int, service time.Duration) queueing.TierConfig {
	return queueing.TierConfig{Name: name, QueueLimit: q, Servers: servers, Service: sim.NewDeterministic(service)}
}

func TestAttributionSingleRequest(t *testing.T) {
	e := sim.NewEngine(1)
	n, tr := buildTraced(t, e, testSpec(), 0,
		detTier("front", queueing.Infinite, 1, 10*time.Millisecond),
		detTier("back", queueing.Infinite, 1, 20*time.Millisecond),
	)
	if _, err := n.Submit(queueing.SubmitOpts{Class: 1}); err != nil {
		t.Fatal(err)
	}
	if err := e.RunAll(1000); err != nil {
		t.Fatal(err)
	}
	if tr.Closed() != 1 {
		t.Fatalf("closed = %d, want 1", tr.Closed())
	}
	tail := tr.TailAttributions()
	if len(tail) != 1 {
		t.Fatalf("tail has %d records, want 1", len(tail))
	}
	r := tail[0]
	if r.RT != 30*time.Millisecond {
		t.Errorf("RT = %v, want 30ms", r.RT)
	}
	if r.Service[0] != 10*time.Millisecond || r.Service[1] != 20*time.Millisecond {
		t.Errorf("service = %v, want [10ms 20ms]", r.Service)
	}
	if r.Queue[0] != 0 || r.Queue[1] != 0 {
		t.Errorf("queue = %v, want zeros (idle system)", r.Queue)
	}
	if r.RetransWait != 0 || r.Other != 0 || r.Attempts != 1 || r.Drops != 0 || r.Abandoned {
		t.Errorf("unexpected components: %+v", r)
	}
	if got := r.TotalQueue() + r.TotalService() + r.RetransWait + r.Other; got != r.RT {
		t.Errorf("attribution identity broken: components sum to %v, RT %v", got, r.RT)
	}
}

func TestAttributionQueueing(t *testing.T) {
	e := sim.NewEngine(1)
	n, tr := buildTraced(t, e, testSpec(), 0,
		detTier("only", queueing.Infinite, 1, 10*time.Millisecond))
	for i := 0; i < 3; i++ {
		if _, err := n.Submit(queueing.SubmitOpts{Class: 0}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.RunAll(1000); err != nil {
		t.Fatal(err)
	}
	tail := tr.TailAttributions() // sorted slowest first
	if len(tail) != 3 {
		t.Fatalf("tail has %d records, want 3", len(tail))
	}
	// The k-th arrival (same instant, FIFO) waits k*10ms and serves 10ms.
	for i, wantQueue := range []time.Duration{20 * time.Millisecond, 10 * time.Millisecond, 0} {
		r := tail[i]
		if r.Queue[0] != wantQueue {
			t.Errorf("record %d queue = %v, want %v", i, r.Queue[0], wantQueue)
		}
		if r.Service[0] != 10*time.Millisecond {
			t.Errorf("record %d service = %v, want 10ms", i, r.Service[0])
		}
		if r.RT != wantQueue+10*time.Millisecond {
			t.Errorf("record %d RT = %v, want %v", i, r.RT, wantQueue+10*time.Millisecond)
		}
	}
}

func TestRetransmissionWait(t *testing.T) {
	e := sim.NewEngine(1)
	// QueueLimit 1: the second submission is refused while the first is in
	// service.
	n, tr := buildTraced(t, e, testSpec(), 0,
		detTier("front", 1, 1, 10*time.Millisecond))
	if _, err := n.Submit(queueing.SubmitOpts{Class: 0}); err != nil {
		t.Fatal(err)
	}
	const rto = 50 * time.Millisecond
	resubmit := func(req *queueing.Request) {
		id, attempt, first := req.TraceID, req.Attempt+1, req.FirstAttempt
		e.Schedule(rto, func() {
			if _, err := n.Submit(queueing.SubmitOpts{
				Class: 0, TraceID: id, Attempt: attempt, FirstAttempt: first,
			}); err != nil {
				t.Errorf("resubmit: %v", err)
			}
		})
	}
	if _, err := n.Submit(queueing.SubmitOpts{Class: 0, OnDrop: resubmit}); err != nil {
		t.Fatal(err)
	}
	if err := e.RunAll(1000); err != nil {
		t.Fatal(err)
	}
	if tr.Closed() != 2 {
		t.Fatalf("closed = %d, want 2", tr.Closed())
	}
	r := tr.TailAttributions()[0] // the retransmitted trace is slowest
	if r.Attempts != 2 || r.Drops != 1 {
		t.Fatalf("attempts/drops = %d/%d, want 2/1", r.Attempts, r.Drops)
	}
	if r.RetransWait != rto {
		t.Errorf("retransmission wait = %v, want %v", r.RetransWait, rto)
	}
	// Dropped at 0, resubmitted at 50ms into an idle tier: no queueing.
	if r.Queue[0] != 0 {
		t.Errorf("queue = %v, want 0", r.Queue[0])
	}
	if r.RT != rto+10*time.Millisecond {
		t.Errorf("RT = %v, want %v", r.RT, rto+10*time.Millisecond)
	}
	if got := r.TotalQueue() + r.TotalService() + r.RetransWait + r.Other; got != r.RT {
		t.Errorf("attribution identity broken: components sum to %v, RT %v", got, r.RT)
	}
}

func TestAbandonClosesTrace(t *testing.T) {
	e := sim.NewEngine(1)
	n, tr := buildTraced(t, e, testSpec(), 0,
		detTier("front", 1, 1, 10*time.Millisecond))
	if _, err := n.Submit(queueing.SubmitOpts{Class: 0}); err != nil {
		t.Fatal(err)
	}
	var dropped uint64
	abandon := func(req *queueing.Request) {
		id := req.TraceID
		dropped = id
		e.Schedule(5*time.Millisecond, func() { tr.Abandon(id) })
	}
	if _, err := n.Submit(queueing.SubmitOpts{Class: 0, OnDrop: abandon}); err != nil {
		t.Fatal(err)
	}
	if err := e.RunAll(1000); err != nil {
		t.Fatal(err)
	}
	if dropped == 0 {
		t.Fatal("second submission was not dropped")
	}
	if tr.Closed() != 2 {
		t.Fatalf("closed = %d, want 2", tr.Closed())
	}
	agg := tr.Aggregate()
	if agg.Abandoned != 1 {
		t.Errorf("abandoned = %d, want 1", agg.Abandoned)
	}
	var found bool
	for _, r := range tr.TailAttributions() {
		if r.TraceID == dropped {
			found = true
			if !r.Abandoned {
				t.Error("abandoned trace not flagged")
			}
			if r.RT != 5*time.Millisecond {
				t.Errorf("abandoned RT = %v, want 5ms (drop at 0, give-up at 5ms)", r.RT)
			}
		}
	}
	if !found {
		t.Error("abandoned trace missing from tail sample")
	}
	// Abandoning an unknown trace is a no-op.
	tr.Abandon(999999)
	if tr.Closed() != 2 {
		t.Error("abandoning an unknown trace changed state")
	}
}

func TestTailSamplingKeepsSlowest(t *testing.T) {
	e := sim.NewEngine(1)
	spec := testSpec()
	spec.TailKeep = 3
	n, tr := buildTraced(t, e, spec, 0,
		detTier("only", queueing.Infinite, 1, 10*time.Millisecond))
	// Six simultaneous arrivals into one server: RT = 10ms..60ms.
	for i := 0; i < 6; i++ {
		if _, err := n.Submit(queueing.SubmitOpts{Class: 0}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.RunAll(1000); err != nil {
		t.Fatal(err)
	}
	tail := tr.TailAttributions()
	if len(tail) != 3 {
		t.Fatalf("tail has %d records, want 3", len(tail))
	}
	want := []time.Duration{60 * time.Millisecond, 50 * time.Millisecond, 40 * time.Millisecond}
	for i, r := range tail {
		if r.RT != want[i] {
			t.Errorf("tail[%d].RT = %v, want %v (slowest-N, slowest first)", i, r.RT, want[i])
		}
	}
	if tr.Closed() != 6 {
		t.Errorf("closed = %d, want 6 (sampling must not affect counting)", tr.Closed())
	}
}

func TestHeadSamplingDeterministic(t *testing.T) {
	run := func() []uint64 {
		e := sim.NewEngine(1)
		spec := testSpec()
		spec.HeadEvery = 4
		spec.HeadKeep = 8
		n, tr := buildTraced(t, e, spec, 0,
			detTier("only", queueing.Infinite, 4, 10*time.Millisecond))
		for i := 0; i < 20; i++ {
			if _, err := n.Submit(queueing.SubmitOpts{Class: 0}); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.RunAll(1000); err != nil {
			t.Fatal(err)
		}
		head := tr.HeadAttributions()
		ids := make([]uint64, len(head))
		for i, r := range head {
			ids[i] = r.TraceID
		}
		return ids
	}
	a, b := run(), run()
	if len(a) != 5 {
		t.Fatalf("head kept %d traces, want 5 (20 closed, 1-in-4)", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("head sample not deterministic: %v vs %v", a, b)
		}
	}
	// The phase derives from the frozen seed scheme, not the engine RNG.
	wantPhase := uint64(sweep.DeriveSeed(1, 0)) % 4
	gotFirst := a[0]
	if (gotFirst-1)%4 != wantPhase {
		t.Errorf("first head trace ID %d does not match phase %d", gotFirst, wantPhase)
	}
}

func TestResetDiscardsOpenTraces(t *testing.T) {
	e := sim.NewEngine(1)
	n2, tr2 := buildTraced(t, e, testSpec(), time.Second,
		detTier("only", queueing.Infinite, 1, 10*time.Millisecond))
	if _, err := n2.Submit(queueing.SubmitOpts{Class: 0}); err != nil {
		t.Fatal(err)
	}
	// Reset mid-flight: the open trace's timing mixes eras and must not
	// be sampled when it closes.
	tr2.Reset(e.Now())
	if err := e.RunAll(1000); err != nil {
		t.Fatal(err)
	}
	if tr2.Closed() != 0 {
		t.Errorf("closed = %d, want 0 (pre-reset trace must be discarded)", tr2.Closed())
	}
	if len(tr2.TailAttributions()) != 0 {
		t.Error("discarded trace leaked into the tail sample")
	}
	if tr2.OpenTraces() != 0 {
		t.Errorf("open = %d, want 0 (discarded slot must still be freed)", tr2.OpenTraces())
	}
	// The tracer keeps working for post-reset traffic.
	if _, err := n2.Submit(queueing.SubmitOpts{Class: 0}); err != nil {
		t.Fatal(err)
	}
	if err := e.RunAll(1000); err != nil {
		t.Fatal(err)
	}
	if tr2.Closed() != 1 {
		t.Errorf("closed = %d after reset, want 1", tr2.Closed())
	}
}

func TestUntrackedOverflow(t *testing.T) {
	e := sim.NewEngine(1)
	spec := testSpec()
	spec.MaxActive = 2
	n, tr := buildTraced(t, e, spec, 0,
		detTier("only", queueing.Infinite, 1, 10*time.Millisecond))
	for i := 0; i < 5; i++ {
		if _, err := n.Submit(queueing.SubmitOpts{Class: 0}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.RunAll(1000); err != nil {
		t.Fatal(err)
	}
	// Three of the five simultaneous traces overflow MaxActive=2.
	if tr.Untracked() != 3 {
		t.Errorf("untracked = %d, want 3", tr.Untracked())
	}
	if tr.Closed() != 2 {
		t.Errorf("closed = %d, want 2", tr.Closed())
	}
}

func TestTimelineWindows(t *testing.T) {
	e := sim.NewEngine(1)
	spec := testSpec()
	spec.Resolutions = []time.Duration{50 * time.Millisecond, 200 * time.Millisecond}
	n, tr := buildTraced(t, e, spec, 400*time.Millisecond,
		detTier("only", queueing.Infinite, 1, 10*time.Millisecond))
	// One completion at 10ms, a burst of three finishing at 110/120/130ms.
	if _, err := n.Submit(queueing.SubmitOpts{Class: 0}); err != nil {
		t.Fatal(err)
	}
	e.Schedule(100*time.Millisecond, func() {
		for i := 0; i < 3; i++ {
			if _, err := n.Submit(queueing.SubmitOpts{Class: 0}); err != nil {
				t.Errorf("burst submit: %v", err)
			}
		}
	})
	if err := e.RunAll(1000); err != nil {
		t.Fatal(err)
	}
	fine := tr.Timeline(50 * time.Millisecond)
	coarse := tr.Timeline(200 * time.Millisecond)
	if fine == nil || coarse == nil {
		t.Fatal("timelines missing")
	}
	if tr.Timeline(time.Hour) != nil {
		t.Error("lookup of an unconfigured resolution should return nil")
	}
	fp := fine.Points()
	if len(fp) != 3 {
		t.Fatalf("fine timeline has %d windows, want 3 (last completion at 130ms)", len(fp))
	}
	if fp[0].Count != 1 || fp[1].Count != 0 || fp[2].Count != 3 {
		t.Errorf("fine counts = %d/%d/%d, want 1/0/3", fp[0].Count, fp[1].Count, fp[2].Count)
	}
	// Window [100,150)ms: RT 10, 20, 30ms -> mean 20ms, max 30ms.
	if fp[2].MeanRT() != 20*time.Millisecond || fp[2].MaxRT != 30*time.Millisecond {
		t.Errorf("fine window 2 mean/max = %v/%v, want 20ms/30ms", fp[2].MeanRT(), fp[2].MaxRT)
	}
	cp := coarse.Points()
	if len(cp) != 1 || cp[0].Count != 4 {
		t.Fatalf("coarse timeline = %+v, want one window with 4 closes", cp)
	}
	// Blindness: fine peak 20ms vs the coarse view of that instant,
	// (10+10+20+30)/4 = 17.5ms.
	want := float64(20*time.Millisecond) / float64(17500*time.Microsecond)
	if got := BlindnessRatio(fine, coarse); got != want {
		t.Errorf("blindness ratio = %v, want %v", got, want)
	}
}

func TestEventRingWraps(t *testing.T) {
	e := sim.NewEngine(1)
	spec := testSpec()
	spec.EventRing = 8
	n, tr := buildTraced(t, e, spec, 0,
		detTier("only", queueing.Infinite, 1, time.Millisecond))
	for i := 0; i < 4; i++ {
		if _, err := n.Submit(queueing.SubmitOpts{Class: 0}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.RunAll(1000); err != nil {
		t.Fatal(err)
	}
	evs := tr.Events()
	if len(evs) != 8 {
		t.Fatalf("ring returned %d events, want 8", len(evs))
	}
	if tr.EventsDropped() == 0 {
		t.Error("expected overwritten events")
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("events out of order: seq %d after %d", evs[i].Seq, evs[i-1].Seq)
		}
		if evs[i].T < evs[i-1].T {
			t.Fatalf("events not time-ordered: %v after %v", evs[i].T, evs[i-1].T)
		}
	}
}

func TestSpecValidation(t *testing.T) {
	e := sim.NewEngine(1)
	bad := []Config{
		{Spec: Spec{MaxActive: 0}, Tiers: 1},
		{Spec: Spec{MaxActive: 8, EventRing: -1}, Tiers: 1},
		{Spec: Spec{MaxActive: 8, TailKeep: -1}, Tiers: 1},
		{Spec: Spec{MaxActive: 8, HeadEvery: 2, HeadKeep: 0}, Tiers: 1},
		{Spec: Spec{MaxActive: 8, Resolutions: []time.Duration{0}}, Tiers: 1, Horizon: time.Second},
		{Spec: Spec{MaxActive: 8, Resolutions: []time.Duration{time.Second}}, Tiers: 1},
		{Spec: Spec{MaxActive: 8}, Tiers: 0},
		{Spec: Spec{MaxActive: 8}, Tiers: 2, TierNames: []string{"one"}},
	}
	for i, cfg := range bad {
		if _, err := New(e, cfg); err == nil {
			t.Errorf("config %d accepted, want error: %+v", i, cfg)
		}
	}
	if _, err := New(nil, Config{Spec: DefaultSpec(), Tiers: 3, Horizon: time.Minute}); err == nil {
		t.Error("nil engine accepted")
	}
	if err := DefaultSpec().Validate(); err != nil {
		t.Errorf("DefaultSpec invalid: %v", err)
	}
}

func TestEventKindStrings(t *testing.T) {
	cases := map[EventKind]string{
		EventKind(queueing.SpanSubmit):   "submit",
		EventKind(queueing.SpanComplete): "complete",
		EvRetransmitScheduled:            "retransmit-scheduled",
		EvAbandoned:                      "abandoned",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("EventKind(%d).String() = %q, want %q", k, got, want)
		}
	}
}
