package control

import (
	"fmt"
	"sort"
	"time"

	"memca/internal/sim"
)

// SubmitFunc issues one lightweight probe request and invokes done with
// the observed response time when the reply (or a timeout surrogate)
// arrives. The MemCA backend plugs the target website's HTTP front door in
// here; the simulation plugs the queueing network's front tier.
type SubmitFunc func(done func(rt time.Duration))

// ProberConfig parameterizes the response-time prober.
type ProberConfig struct {
	// Period separates probe requests (lightweight: one per second by
	// default, invisible against the legitimate load).
	Period time.Duration
	// Window is how many recent probes percentile queries consider.
	Window int
}

// DefaultProberConfig returns a 1-second probe with a 60-sample window.
func DefaultProberConfig() ProberConfig {
	return ProberConfig{Period: time.Second, Window: 60}
}

// Prober periodically sends probe requests and answers percentile queries
// over the most recent window — MemCA-BE's view of the victim's tail.
type Prober struct {
	engine *sim.Engine
	cfg    ProberConfig
	submit SubmitFunc

	running bool
	ring    []time.Duration
	next    int
	filled  bool
	total   uint64
}

// NewProber validates and builds a prober; Start begins probing.
func NewProber(engine *sim.Engine, cfg ProberConfig, submit SubmitFunc) (*Prober, error) {
	if engine == nil {
		return nil, fmt.Errorf("control: engine must not be nil")
	}
	if cfg.Period <= 0 {
		return nil, fmt.Errorf("control: probe period must be positive, got %v", cfg.Period)
	}
	if cfg.Window <= 0 {
		return nil, fmt.Errorf("control: probe window must be positive, got %d", cfg.Window)
	}
	if submit == nil {
		return nil, fmt.Errorf("control: submit must not be nil")
	}
	return &Prober{
		engine: engine,
		cfg:    cfg,
		submit: submit,
		ring:   make([]time.Duration, cfg.Window),
	}, nil
}

// Start begins periodic probing. Idempotent while running.
func (p *Prober) Start() {
	if p.running {
		return
	}
	p.running = true
	p.tick()
}

// Stop halts probing after the in-flight probe.
func (p *Prober) Stop() { p.running = false }

func (p *Prober) tick() {
	if !p.running {
		return
	}
	p.submit(func(rt time.Duration) { p.record(rt) })
	p.engine.Schedule(p.cfg.Period, p.tick)
}

func (p *Prober) record(rt time.Duration) {
	p.ring[p.next] = rt
	p.next++
	p.total++
	if p.next == len(p.ring) {
		p.next = 0
		p.filled = true
	}
}

// Samples returns how many probes are currently in the window.
func (p *Prober) Samples() int {
	if p.filled {
		return len(p.ring)
	}
	return p.next
}

// Total returns the number of probe responses recorded overall.
func (p *Prober) Total() uint64 { return p.total }

// Percentile returns the pct-th percentile of the current window, or 0
// with no samples.
func (p *Prober) Percentile(pct float64) time.Duration {
	n := p.Samples()
	if n == 0 {
		return 0
	}
	cp := make([]time.Duration, n)
	copy(cp, p.ring[:n])
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	idx := int(pct / 100 * float64(n-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return cp[idx]
}
