package control

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"memca/internal/attack"
	"memca/internal/sim"
)

func TestKalmanValidation(t *testing.T) {
	if _, err := NewKalman1D(0, 1); err == nil {
		t.Error("zero process noise accepted")
	}
	if _, err := NewKalman1D(1, 0); err == nil {
		t.Error("zero measurement noise accepted")
	}
	if _, err := NewKalman1D(math.NaN(), 1); err == nil {
		t.Error("NaN accepted")
	}
}

func TestKalmanConvergesToConstant(t *testing.T) {
	kf, err := NewKalman1D(0.0001, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 3000; i++ {
		kf.Update(5 + rng.NormFloat64())
	}
	if got := kf.Value(); got < 4.8 || got > 5.2 {
		t.Errorf("estimate %v, want ~5", got)
	}
	if kf.Variance() >= 1 {
		t.Errorf("posterior variance %v not below measurement noise", kf.Variance())
	}
	if kf.Count() != 3000 {
		t.Errorf("Count = %d", kf.Count())
	}
}

func TestKalmanTracksStep(t *testing.T) {
	kf, err := NewKalman1D(0.05, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		kf.Update(1)
	}
	for i := 0; i < 100; i++ {
		kf.Update(10)
	}
	if got := kf.Value(); got < 9 {
		t.Errorf("estimate %v did not track the step to 10", got)
	}
}

func TestKalmanSmoothsNoise(t *testing.T) {
	kf, err := NewKalman1D(0.001, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	var rawVar, estVar float64
	var prevRaw, prevEst float64
	for i := 0; i < 5000; i++ {
		z := 3 + rng.NormFloat64()
		est := kf.Update(z)
		if i > 0 {
			rawVar += (z - prevRaw) * (z - prevRaw)
			estVar += (est - prevEst) * (est - prevEst)
		}
		prevRaw, prevEst = z, est
	}
	if estVar >= rawVar/10 {
		t.Errorf("filter output variation %v not well below input %v", estVar, rawVar)
	}
}

func TestProberWindowPercentile(t *testing.T) {
	e := sim.NewEngine(1)
	i := 0
	submit := func(done func(time.Duration)) {
		i++
		done(time.Duration(i) * time.Millisecond)
	}
	p, err := NewProber(e, ProberConfig{Period: time.Second, Window: 10}, submit)
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	e.Run(25 * time.Second)
	p.Stop()
	e.Run(30 * time.Second)

	if p.Samples() != 10 {
		t.Errorf("window holds %d, want 10", p.Samples())
	}
	if p.Total() < 25 {
		t.Errorf("total probes %d, want >= 25", p.Total())
	}
	// The window holds the last 10 observations; its max is the largest.
	if got := p.Percentile(100); got < 25*time.Millisecond {
		t.Errorf("window max %v, want >= 25ms", got)
	}
	if p.Percentile(0) >= p.Percentile(100) {
		t.Error("percentiles not ordered")
	}
}

func TestProberEmptyWindow(t *testing.T) {
	e := sim.NewEngine(1)
	p, err := NewProber(e, DefaultProberConfig(), func(done func(time.Duration)) {})
	if err != nil {
		t.Fatal(err)
	}
	if p.Percentile(95) != 0 {
		t.Error("empty prober should return 0")
	}
}

func TestProberValidation(t *testing.T) {
	e := sim.NewEngine(1)
	ok := func(done func(time.Duration)) { done(0) }
	if _, err := NewProber(nil, DefaultProberConfig(), ok); err == nil {
		t.Error("nil engine accepted")
	}
	if _, err := NewProber(e, ProberConfig{Period: 0, Window: 5}, ok); err == nil {
		t.Error("zero period accepted")
	}
	if _, err := NewProber(e, ProberConfig{Period: time.Second, Window: 0}, ok); err == nil {
		t.Error("zero window accepted")
	}
	if _, err := NewProber(e, DefaultProberConfig(), nil); err == nil {
		t.Error("nil submit accepted")
	}
}

func defaultGoal() Goal {
	return Goal{Percentile: 95, TargetRT: time.Second, MaxMillibottleneck: time.Second}
}

func initialParams() attack.Params {
	return attack.Params{Intensity: 0.5, BurstLength: 100 * time.Millisecond, Interval: 2 * time.Second}
}

func TestCommanderValidation(t *testing.T) {
	if _, err := NewCommander(Goal{}, DefaultBounds(), initialParams()); err == nil {
		t.Error("zero goal accepted")
	}
	if _, err := NewCommander(defaultGoal(), Bounds{}, initialParams()); err == nil {
		t.Error("zero bounds accepted")
	}
	if _, err := NewCommander(defaultGoal(), DefaultBounds(), attack.Params{}); err == nil {
		t.Error("zero params accepted")
	}
	bad := DefaultBounds()
	bad.MinBurst = 2 * bad.MinInterval
	if _, err := NewCommander(defaultGoal(), bad, initialParams()); err == nil {
		t.Error("contradictory bounds accepted")
	}
}

func TestCommanderEscalatesWhenUnderGoal(t *testing.T) {
	c, err := NewCommander(defaultGoal(), DefaultBounds(), initialParams())
	if err != nil {
		t.Fatal(err)
	}
	start := c.Params()
	var p attack.Params
	for i := 0; i < 20; i++ {
		p = c.Decide(Observation{TailRT: 200 * time.Millisecond})
	}
	if p.BurstLength <= start.BurstLength {
		t.Errorf("burst length did not grow: %v -> %v", start.BurstLength, p.BurstLength)
	}
	if c.Escalations() == 0 {
		t.Error("no escalations counted")
	}
	if err := p.Validate(); err != nil {
		t.Errorf("commander produced invalid params: %v", err)
	}
}

func TestCommanderEscalationOrder(t *testing.T) {
	// Once L hits its cap, the commander shrinks I; once I hits its
	// floor, it raises intensity.
	c, err := NewCommander(defaultGoal(), DefaultBounds(), initialParams())
	if err != nil {
		t.Fatal(err)
	}
	under := Observation{TailRT: 100 * time.Millisecond}
	for i := 0; i < 200; i++ {
		c.Decide(under)
	}
	p := c.Params()
	b := DefaultBounds()
	if p.BurstLength != b.MaxBurst {
		t.Errorf("burst length %v, want pinned at %v", p.BurstLength, b.MaxBurst)
	}
	if p.Interval != b.MinInterval {
		t.Errorf("interval %v, want pinned at %v", p.Interval, b.MinInterval)
	}
	if p.Intensity != 1 {
		t.Errorf("intensity %v, want pinned at 1", p.Intensity)
	}
	if p.BurstLength > p.Interval {
		t.Error("L > I invariant violated")
	}
}

func TestCommanderBacksOffWhenOvershooting(t *testing.T) {
	c, err := NewCommander(defaultGoal(), DefaultBounds(), attack.Params{
		Intensity: 1, BurstLength: 800 * time.Millisecond, Interval: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		c.Decide(Observation{TailRT: 5 * time.Second})
	}
	p := c.Params()
	if p.Intensity >= 1 && p.Interval <= time.Second {
		t.Errorf("no backoff despite 5x overshoot: %+v", p)
	}
	if c.Backoffs() == 0 {
		t.Error("no backoffs counted")
	}
}

func TestCommanderRespectsStealthBound(t *testing.T) {
	c, err := NewCommander(defaultGoal(), DefaultBounds(), attack.Params{
		Intensity: 1, BurstLength: 800 * time.Millisecond, Interval: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Millibottleneck over the bound: the burst must shrink even though
	// damage is below goal.
	p := c.Decide(Observation{TailRT: 100 * time.Millisecond, Millibottleneck: 1500 * time.Millisecond})
	if p.BurstLength >= 800*time.Millisecond {
		t.Errorf("burst did not shrink under stealth pressure: %v", p.BurstLength)
	}
}

func TestCommanderConvergesInClosedLoop(t *testing.T) {
	// Synthetic plant: tail RT grows with duty cycle and intensity.
	// tail = 4s * duty * intensity (plus noise): the commander should
	// settle around its 1s target without pinning at max pressure.
	c, err := NewCommander(defaultGoal(), DefaultBounds(), initialParams())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	plant := func(p attack.Params) time.Duration {
		duty := float64(p.BurstLength) / float64(p.Interval)
		rt := 4 * duty * p.Intensity // seconds
		rt *= 1 + 0.1*rng.NormFloat64()
		if rt < 0.05 {
			rt = 0.05
		}
		return time.Duration(rt * float64(time.Second))
	}
	p := c.Params()
	for i := 0; i < 300; i++ {
		p = c.Decide(Observation{TailRT: plant(p)})
	}
	// Steady state: smoothed tail within [target, 1.8*target].
	tail := c.SmoothedTailRT()
	if tail < 800*time.Millisecond || tail > 2200*time.Millisecond {
		t.Errorf("closed loop settled at %v, want near 1-1.8s band", tail)
	}
}
