package control

import (
	"fmt"
	"time"

	"memca/internal/attack"
)

// Goal is the attacker's objective: push the measured percentile response
// time past TargetRT while each millibottleneck stays under the stealth
// bound.
type Goal struct {
	// Percentile is which tail to target (paper: 95).
	Percentile float64
	// TargetRT is the damage goal (paper: > 1 s).
	TargetRT time.Duration
	// MaxMillibottleneck is the stealth bound (paper: < 1 s).
	MaxMillibottleneck time.Duration
}

// Validate reports the first goal error, or nil.
func (g Goal) Validate() error {
	if g.Percentile <= 0 || g.Percentile >= 100 {
		return fmt.Errorf("control: percentile must be in (0,100), got %v", g.Percentile)
	}
	if g.TargetRT <= 0 {
		return fmt.Errorf("control: TargetRT must be positive, got %v", g.TargetRT)
	}
	if g.MaxMillibottleneck <= 0 {
		return fmt.Errorf("control: MaxMillibottleneck must be positive, got %v", g.MaxMillibottleneck)
	}
	return nil
}

// Bounds clamps the commander's search space.
type Bounds struct {
	// MinBurst and MaxBurst bound L.
	MinBurst, MaxBurst time.Duration
	// MinInterval and MaxInterval bound I.
	MinInterval, MaxInterval time.Duration
	// MinIntensity bounds R from below (R never exceeds 1).
	MinIntensity float64
}

// DefaultBounds returns the search space used in the evaluation: bursts of
// 50 ms to 800 ms, intervals of 1 s to 8 s.
func DefaultBounds() Bounds {
	return Bounds{
		MinBurst:     50 * time.Millisecond,
		MaxBurst:     800 * time.Millisecond,
		MinInterval:  time.Second,
		MaxInterval:  8 * time.Second,
		MinIntensity: 0.2,
	}
}

// Validate reports the first bounds error, or nil.
func (b Bounds) Validate() error {
	switch {
	case b.MinBurst <= 0 || b.MaxBurst < b.MinBurst:
		return fmt.Errorf("control: burst bounds invalid: [%v, %v]", b.MinBurst, b.MaxBurst)
	case b.MinInterval <= 0 || b.MaxInterval < b.MinInterval:
		return fmt.Errorf("control: interval bounds invalid: [%v, %v]", b.MinInterval, b.MaxInterval)
	case b.MinBurst > b.MinInterval:
		return fmt.Errorf("control: MinBurst %v exceeds MinInterval %v", b.MinBurst, b.MinInterval)
	case b.MinIntensity <= 0 || b.MinIntensity > 1:
		return fmt.Errorf("control: MinIntensity must be in (0,1], got %v", b.MinIntensity)
	}
	return nil
}

// Observation is one decision epoch's measurement, assembled by MemCA-BE
// from the prober (tail RT) and MemCA-FE's report (millibottleneck
// estimate from the attack program's execution time).
type Observation struct {
	// TailRT is the measured percentile response time.
	TailRT time.Duration
	// Millibottleneck is the FE-estimated millibottleneck length; zero
	// means "unknown this epoch".
	Millibottleneck time.Duration
}

// Commander adjusts attack parameters from observations: a Kalman filter
// smooths the tail-RT signal, then a bounded multiplicative law escalates
// (longer, denser, stronger bursts) while under the damage goal and backs
// off when the stealth bound is at risk or the damage goal is far
// overshot.
type Commander struct {
	goal   Goal
	bounds Bounds
	params attack.Params
	kf     *Kalman1D

	decisions int
	escalated int
	backedOff int
}

// NewCommander builds a commander starting from the given parameters.
func NewCommander(goal Goal, bounds Bounds, initial attack.Params) (*Commander, error) {
	if err := goal.Validate(); err != nil {
		return nil, err
	}
	if err := bounds.Validate(); err != nil {
		return nil, err
	}
	if err := initial.Validate(); err != nil {
		return nil, err
	}
	// Noise scales chosen for seconds-valued RT signals: the tail moves
	// slowly between epochs (q) and individual windows are noisy (r).
	kf, err := NewKalman1D(0.01, 0.04)
	if err != nil {
		return nil, err
	}
	return &Commander{goal: goal, bounds: bounds, params: initial, kf: kf}, nil
}

// Params returns the current attack parameters.
func (c *Commander) Params() attack.Params { return c.params }

// Decisions returns how many observations have been processed.
func (c *Commander) Decisions() int { return c.decisions }

// Escalations returns how many decisions increased attack pressure.
func (c *Commander) Escalations() int { return c.escalated }

// Backoffs returns how many decisions decreased attack pressure.
func (c *Commander) Backoffs() int { return c.backedOff }

// SmoothedTailRT returns the Kalman estimate of the tail response time.
func (c *Commander) SmoothedTailRT() time.Duration {
	return time.Duration(c.kf.Value() * float64(time.Second))
}

// Decide ingests one observation and returns the parameters to use from
// the next burst.
func (c *Commander) Decide(obs Observation) attack.Params {
	c.decisions++
	smoothed := c.kf.Update(obs.TailRT.Seconds())
	tail := time.Duration(smoothed * float64(time.Second))

	p := c.params

	// Stealth has priority: if the millibottleneck approaches the bound,
	// shorten the burst regardless of damage.
	if obs.Millibottleneck > 0 && obs.Millibottleneck > c.goal.MaxMillibottleneck {
		p.BurstLength = clampDuration(scaleDuration(p.BurstLength, 0.7), c.bounds.MinBurst, c.bounds.MaxBurst)
		c.backedOff++
		c.params = c.clamp(p)
		return c.params
	}

	switch {
	case tail < c.goal.TargetRT:
		// Under the damage goal: escalate intensity first (a stronger
		// burst deepens the millibottleneck without lengthening the
		// attack footprint), then burst length, then burst density.
		c.escalated++
		switch {
		case p.Intensity < 1:
			p.Intensity *= 1.4
		case p.BurstLength < c.bounds.MaxBurst:
			p.BurstLength = scaleDuration(p.BurstLength, 1.3)
		case p.Interval > c.bounds.MinInterval:
			p.Interval = scaleDuration(p.Interval, 0.8)
		}
	case tail > scaleDuration(c.goal.TargetRT, 1.8):
		// Far past the goal: recover stealth margin.
		c.backedOff++
		switch {
		case p.Intensity > c.bounds.MinIntensity:
			p.Intensity *= 0.85
		case p.Interval < c.bounds.MaxInterval:
			p.Interval = scaleDuration(p.Interval, 1.2)
		default:
			p.BurstLength = scaleDuration(p.BurstLength, 0.85)
		}
	}
	c.params = c.clamp(p)
	return c.params
}

// clamp forces parameters into the bounds and the L <= I invariant.
func (c *Commander) clamp(p attack.Params) attack.Params {
	p.BurstLength = clampDuration(p.BurstLength, c.bounds.MinBurst, c.bounds.MaxBurst)
	p.Interval = clampDuration(p.Interval, c.bounds.MinInterval, c.bounds.MaxInterval)
	if p.BurstLength > p.Interval {
		p.BurstLength = p.Interval
	}
	if p.Intensity < c.bounds.MinIntensity {
		p.Intensity = c.bounds.MinIntensity
	}
	if p.Intensity > 1 {
		p.Intensity = 1
	}
	return p
}

func scaleDuration(d time.Duration, f float64) time.Duration {
	return time.Duration(float64(d) * f)
}

func clampDuration(d, lo, hi time.Duration) time.Duration {
	if d < lo {
		return lo
	}
	if d > hi {
		return hi
	}
	return d
}
