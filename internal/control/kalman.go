// Package control implements the feedback machinery of MemCA's
// implementation section (IV-C): a scalar Kalman filter for smoothing the
// noisy percentile-response-time signal, a ring-buffer prober that
// measures the target's tail online, and the commander that retunes the
// attack parameters (R, L, I) toward the damage goal while respecting the
// stealthiness bound — all without knowing the target system's internals.
package control

import (
	"fmt"
	"math"
)

// Kalman1D is a one-dimensional Kalman filter with identity dynamics
// (x_t = x_{t-1} + w, z_t = x_t + v): a statistically principled smoother
// for a slowly drifting level observed with noise.
type Kalman1D struct {
	q float64 // process noise variance
	r float64 // measurement noise variance

	x      float64 // state estimate
	p      float64 // estimate variance
	primed bool
	count  int
}

// NewKalman1D builds a filter with the given process and measurement
// noise variances.
func NewKalman1D(processNoise, measurementNoise float64) (*Kalman1D, error) {
	if processNoise <= 0 || math.IsNaN(processNoise) {
		return nil, fmt.Errorf("control: process noise must be positive, got %v", processNoise)
	}
	if measurementNoise <= 0 || math.IsNaN(measurementNoise) {
		return nil, fmt.Errorf("control: measurement noise must be positive, got %v", measurementNoise)
	}
	return &Kalman1D{q: processNoise, r: measurementNoise}, nil
}

// Update feeds one measurement and returns the posterior state estimate.
func (k *Kalman1D) Update(z float64) float64 {
	k.count++
	if !k.primed {
		k.x = z
		k.p = k.r
		k.primed = true
		return k.x
	}
	// Predict.
	p := k.p + k.q
	// Update.
	gain := p / (p + k.r)
	k.x += gain * (z - k.x)
	k.p = (1 - gain) * p
	return k.x
}

// Value returns the current state estimate (0 before any measurement).
func (k *Kalman1D) Value() float64 { return k.x }

// Variance returns the current estimate variance.
func (k *Kalman1D) Variance() float64 { return k.p }

// Primed reports whether at least one measurement was processed.
func (k *Kalman1D) Primed() bool { return k.primed }

// Count returns the number of measurements processed.
func (k *Kalman1D) Count() int { return k.count }
