package monitor

import (
	"fmt"
	"time"

	"memca/internal/stats"
)

// AutoScalerConfig models the AWS Auto Scaling trigger the paper tests
// against: scale out when the average CPU utilization of an instance
// exceeds a threshold for a number of consecutive CloudWatch periods.
type AutoScalerConfig struct {
	// Threshold is the utilization trigger (paper: 0.85).
	Threshold float64
	// Period is the evaluation window (CloudWatch: 1 minute).
	Period time.Duration
	// ConsecutivePeriods is how many breaching periods are required
	// before a scaling action fires (AWS default: 1).
	ConsecutivePeriods int
	// Cooldown suppresses new actions after one fires.
	Cooldown time.Duration
}

// DefaultAutoScaler returns the paper's setup: 85% average CPU over one
// 1-minute period, 5-minute cooldown.
func DefaultAutoScaler() AutoScalerConfig {
	return AutoScalerConfig{
		Threshold:          0.85,
		Period:             time.Minute,
		ConsecutivePeriods: 1,
		Cooldown:           5 * time.Minute,
	}
}

// Validate reports the first configuration error, or nil.
func (c AutoScalerConfig) Validate() error {
	switch {
	case c.Threshold <= 0 || c.Threshold > 1:
		return fmt.Errorf("monitor: Threshold must be in (0,1], got %v", c.Threshold)
	case c.Period <= 0:
		return fmt.Errorf("monitor: Period must be positive, got %v", c.Period)
	case c.ConsecutivePeriods <= 0:
		return fmt.Errorf("monitor: ConsecutivePeriods must be positive, got %d", c.ConsecutivePeriods)
	case c.Cooldown < 0:
		return fmt.Errorf("monitor: Cooldown must be non-negative, got %v", c.Cooldown)
	}
	return nil
}

// ScaleEvent is one scale-out decision.
type ScaleEvent struct {
	// At is when the trigger fired (the end of the breaching period).
	At time.Duration
	// Utilization is the breaching period's average.
	Utilization float64
}

// AutoScaler evaluates a utilization signal the way the cloud's trigger
// would.
type AutoScaler struct {
	cfg AutoScalerConfig
}

// NewAutoScaler validates and builds an auto scaler.
func NewAutoScaler(cfg AutoScalerConfig) (*AutoScaler, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &AutoScaler{cfg: cfg}, nil
}

// Evaluate resamples the source at the trigger's period over [0, horizon)
// and returns every scale-out action that would have fired.
func (a *AutoScaler) Evaluate(source UtilizationSource, horizon time.Duration) ([]ScaleEvent, error) {
	if source == nil {
		return nil, fmt.Errorf("monitor: source must not be nil")
	}
	sampler, err := NewSampler("autoscaler", a.cfg.Period, source)
	if err != nil {
		return nil, err
	}
	buckets, err := sampler.Collect(horizon)
	if err != nil {
		return nil, err
	}
	return a.EvaluateBuckets(buckets), nil
}

// EvaluateBuckets applies the trigger to pre-sampled periods.
func (a *AutoScaler) EvaluateBuckets(buckets []stats.Bucket) []ScaleEvent {
	var events []ScaleEvent
	breaching := 0
	var cooldownUntil time.Duration
	for _, b := range buckets {
		end := b.Start + a.cfg.Period
		if b.Mean > a.cfg.Threshold {
			breaching++
		} else {
			breaching = 0
		}
		if breaching >= a.cfg.ConsecutivePeriods && end >= cooldownUntil {
			events = append(events, ScaleEvent{At: end, Utilization: b.Mean})
			breaching = 0
			cooldownUntil = end + a.cfg.Cooldown
		}
	}
	return events
}
