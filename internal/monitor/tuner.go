package monitor

import (
	"fmt"
	"math"
	"sort"

	"memca/internal/stats"
	"memca/internal/telemetry"
)

// This file replaces the hand-picked detector constants the defense study
// started with. Both tuners are pure arithmetic over labeled replication
// data — run them on seed-derived replications and the chosen settings are
// as deterministic as the simulations that produced the data.

// ROCPoint is one operating point of the attribution-threshold sweep:
// alarm when a window's retransmission-wait share exceeds Threshold.
type ROCPoint struct {
	Threshold float64
	// TP / FP count eligible attacked / benign windows above Threshold.
	TP, FP int
	// TPR / FPR normalize by the eligible window populations.
	TPR, FPR float64
}

// TuneAttribution picks the AttributionDetector's share threshold by ROC
// sweep over labeled feature streams: attacked series are the positive
// population, benign series (clean baselines, flash crowds) the negative
// one. Every eligible window (Count >= minCount) contributes one labeled
// observation; candidate thresholds are the observed share values. The
// sweep chooses the candidate maximizing Youden's J (TPR - FPR), breaking
// ties toward the strictest threshold, and returns the midpoint between
// that candidate and the next observed share — centering the decision
// boundary in the separation gap instead of pinning it to a training
// observation.
func TuneAttribution(attacked, benign []*telemetry.FeatureSeries, minCount int) (AttributionDetector, []ROCPoint, error) {
	if minCount < 0 {
		minCount = 0
	}
	shares := func(series []*telemetry.FeatureSeries) []float64 {
		var out []float64
		for _, fs := range series {
			if fs == nil {
				continue
			}
			for _, w := range fs.Windows() {
				if w.Count < minCount {
					continue
				}
				out = append(out, w.RetransShare())
			}
		}
		sort.Float64s(out)
		return out
	}
	pos, neg := shares(attacked), shares(benign)
	if len(pos) == 0 {
		return AttributionDetector{}, nil, fmt.Errorf("monitor: no eligible attacked windows (minCount %d)", minCount)
	}

	// Candidate thresholds: every observed share, plus 0 (the natural
	// "any retransmission wait at all" operating point), deduplicated.
	all := make([]float64, 0, len(pos)+len(neg)+1)
	all = append(all, 0)
	all = append(all, pos...)
	all = append(all, neg...)
	sort.Float64s(all)
	candidates := all[:1]
	for _, v := range all[1:] {
		if v > candidates[len(candidates)-1] {
			candidates = append(candidates, v)
		}
	}

	// countAbove returns how many sorted values exceed threshold.
	countAbove := func(sorted []float64, threshold float64) int {
		return len(sorted) - sort.SearchFloat64s(sorted, math.Nextafter(threshold, math.Inf(1)))
	}
	roc := make([]ROCPoint, 0, len(candidates))
	best := -1
	bestJ := math.Inf(-1)
	for i, c := range candidates {
		p := ROCPoint{Threshold: c, TP: countAbove(pos, c), FP: countAbove(neg, c)}
		p.TPR = float64(p.TP) / float64(len(pos))
		if len(neg) > 0 {
			p.FPR = float64(p.FP) / float64(len(neg))
		}
		roc = append(roc, p)
		if j := p.TPR - p.FPR; j >= bestJ && p.TP > 0 {
			bestJ = j
			best = i
		}
	}
	if best < 0 {
		return AttributionDetector{}, roc, fmt.Errorf("monitor: attacked windows are indistinguishable from benign ones")
	}

	threshold := candidates[best]
	if best+1 < len(candidates) {
		threshold = (candidates[best] + candidates[best+1]) / 2
	}
	return AttributionDetector{ShareThreshold: threshold, MinCount: minCount}, roc, nil
}

// TunedCPUDetectors holds the three CPU-signal detectors with
// sensitivities calibrated by TuneCPUDetectors.
type TunedCPUDetectors struct {
	Threshold ThresholdDetector
	EWMA      EWMADetector
	CUSUM     CUSUMDetector
}

// Detectors returns the tuned set in canonical order.
func (t TunedCPUDetectors) Detectors() []Detector {
	return []Detector{t.Threshold, t.EWMA, t.CUSUM}
}

// TuneCPUDetectors calibrates each CPU-signal detector to the most
// sensitive setting on its parameter grid that stays silent on the clean
// (attack-free) baseline signal — the operating point a provider actually
// deploys: maximum sensitivity at zero standing false alarms. The grids
// scan from sensitive to insensitive, so the first silent setting wins.
func TuneCPUDetectors(clean []stats.Bucket) (TunedCPUDetectors, error) {
	if len(clean) == 0 {
		return TunedCPUDetectors{}, fmt.Errorf("monitor: clean baseline must not be empty")
	}
	var tuned TunedCPUDetectors

	// Hard threshold: lowest level (5% steps) that never fires twice in a
	// row on the baseline.
	found := false
	for level := 5; level <= 95; level += 5 {
		d := ThresholdDetector{Threshold: float64(level) / 100, MinConsecutive: 2}
		if len(d.Detect(clean)) == 0 {
			tuned.Threshold = d
			found = true
			break
		}
	}
	if !found {
		return TunedCPUDetectors{}, fmt.Errorf("monitor: no silent threshold level on the clean baseline")
	}

	// EWMA anomaly: smallest deviation multiplier K (then smoothing alpha)
	// that stays silent.
	found = false
	for k := 2; k <= 8 && !found; k++ {
		for _, alpha := range []float64{0.1, 0.2, 0.3} {
			d := EWMADetector{Alpha: alpha, K: float64(k), Warmup: 20}
			if len(d.Detect(clean)) == 0 {
				tuned.EWMA = d
				found = true
				break
			}
		}
	}
	if !found {
		return TunedCPUDetectors{}, fmt.Errorf("monitor: no silent EWMA setting on the clean baseline")
	}

	// CUSUM: in-control target is the baseline mean; smallest decision
	// threshold h (then slack k) that stays silent.
	mean := 0.0
	for _, b := range clean {
		mean += b.Mean
	}
	mean /= float64(len(clean))
	found = false
	for _, h := range []float64{0.5, 1, 2, 3, 5, 8} {
		for _, slack := range []float64{0.02, 0.05, 0.1, 0.2} {
			d := CUSUMDetector{Target: mean, Slack: slack, DecisionThreshold: h}
			if len(d.Detect(clean)) == 0 {
				tuned.CUSUM = d
				found = true
				break
			}
		}
		if found {
			break
		}
	}
	if !found {
		return TunedCPUDetectors{}, fmt.Errorf("monitor: no silent CUSUM setting on the clean baseline")
	}
	return tuned, nil
}
