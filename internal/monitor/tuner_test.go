package monitor

import (
	"math"
	"testing"
	"time"

	"memca/internal/stats"
	"memca/internal/telemetry"
)

// shareSeries builds a feature series whose consecutive windows carry the
// given retransmission-wait shares, one closed trace per window.
func shareSeries(t *testing.T, shares ...float64) *telemetry.FeatureSeries {
	t.Helper()
	res := 100 * time.Millisecond
	fs, err := telemetry.NewFeatureSeries(res, time.Duration(len(shares)+1)*res, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, share := range shares {
		rt := 100 * time.Millisecond
		retrans := time.Duration(share * float64(rt))
		fs.Add(time.Duration(i)*res, rt, 0, rt-retrans, retrans, 1, 0)
	}
	return fs
}

func TestAttributionDetector(t *testing.T) {
	fs := shareSeries(t, 0.1, 0.9, 0.95, 0.2)
	d := AttributionDetector{ShareThreshold: 0.5}
	alarms := d.DetectFeatures(fs)
	if len(alarms) != 2 {
		t.Fatalf("got %d alarms, want 2", len(alarms))
	}
	if alarms[0].At != 100*time.Millisecond || alarms[1].At != 200*time.Millisecond {
		t.Errorf("alarm times = %v, %v", alarms[0].At, alarms[1].At)
	}
	if math.Abs(alarms[0].Value-0.9) > 1e-9 {
		t.Errorf("alarm value = %v, want 0.9", alarms[0].Value)
	}

	// MinCount gates every one-trace window out.
	gated := AttributionDetector{ShareThreshold: 0.5, MinCount: 2}
	if got := gated.DetectFeatures(fs); len(got) != 0 {
		t.Errorf("minCount-gated detector alarmed %d times", len(got))
	}
	if got := d.DetectFeatures(nil); got != nil {
		t.Error("nil series produced alarms")
	}
}

func TestBridgeFeatures(t *testing.T) {
	fs := shareSeries(t, 0.9)
	bridged := BridgeFeatures(AttributionDetector{ShareThreshold: 0.5}, fs)
	if bridged.Name() != "attribution" {
		t.Errorf("bridged name = %q", bridged.Name())
	}
	// The sampled buckets are ignored; only the bound series matters.
	if got := bridged.Detect([]stats.Bucket{{Mean: 0}}); len(got) != 1 {
		t.Errorf("bridged detect found %d alarms, want 1", len(got))
	}
	if got := bridged.Detect(nil); len(got) != 1 {
		t.Errorf("bridged detect without buckets found %d alarms, want 1", len(got))
	}
}

func TestTuneAttribution(t *testing.T) {
	attacked := shareSeries(t, 0.8, 0.9)
	benign := shareSeries(t, 0.1, 0.2)
	det, roc, err := TuneAttribution(
		[]*telemetry.FeatureSeries{attacked},
		[]*telemetry.FeatureSeries{benign}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Candidates 0, 0.1, 0.2, 0.8, 0.9: Youden's J peaks at 0.2
	// (TPR 1, FPR 0); the returned threshold is the midpoint of the
	// separation gap [0.2, 0.8].
	if math.Abs(det.ShareThreshold-0.5) > 1e-9 {
		t.Errorf("threshold = %v, want 0.5", det.ShareThreshold)
	}
	if len(roc) != 5 {
		t.Fatalf("got %d ROC points, want 5", len(roc))
	}
	for _, p := range roc {
		if math.Abs(p.Threshold-0.2) < 1e-9 {
			if p.TP != 2 || p.FP != 0 || p.TPR != 1 || p.FPR != 0 {
				t.Errorf("ROC at 0.2 = %+v, want TP 2 FP 0", p)
			}
		}
	}

	// No attacked window passes a high minCount floor.
	if _, _, err := TuneAttribution(
		[]*telemetry.FeatureSeries{attacked},
		[]*telemetry.FeatureSeries{benign}, 5); err == nil {
		t.Error("empty eligible attacked population accepted")
	}
	// Attacked windows with zero share are inseparable from benign ones.
	if _, _, err := TuneAttribution(
		[]*telemetry.FeatureSeries{shareSeries(t, 0, 0)},
		[]*telemetry.FeatureSeries{benign}, 0); err == nil {
		t.Error("inseparable populations accepted")
	}
}

func TestTuneCPUDetectors(t *testing.T) {
	// A flat 40% clean signal with mild noise.
	clean := make([]stats.Bucket, 60)
	for i := range clean {
		clean[i] = stats.Bucket{
			Start: time.Duration(i) * time.Second,
			Mean:  0.4 + 0.01*float64(i%3),
		}
	}
	tuned, err := TuneCPUDetectors(clean)
	if err != nil {
		t.Fatal(err)
	}
	// Every tuned detector is silent on its own calibration signal.
	for _, d := range tuned.Detectors() {
		if alarms := d.Detect(clean); len(alarms) != 0 {
			t.Errorf("tuned %s alarms %d times on its clean baseline", d.Name(), len(alarms))
		}
	}
	// The threshold sits just above the clean band: the 5%-step grid
	// stops at the first silent level.
	if tuned.Threshold.Threshold < 0.4 || tuned.Threshold.Threshold > 0.5 {
		t.Errorf("tuned threshold = %v, want just above the 0.40-0.42 band", tuned.Threshold.Threshold)
	}
	// A saturated signal trips all three.
	hot := make([]stats.Bucket, 60)
	for i := range hot {
		hot[i] = stats.Bucket{Start: time.Duration(i) * time.Second, Mean: 0.4}
		if i >= 30 {
			hot[i].Mean = 0.98
		}
	}
	for _, d := range tuned.Detectors() {
		if alarms := d.Detect(hot); len(alarms) == 0 {
			t.Errorf("tuned %s missed a sustained saturation", d.Name())
		}
	}

	if _, err := TuneCPUDetectors(nil); err == nil {
		t.Error("empty clean baseline accepted")
	}
}
