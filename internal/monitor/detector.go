package monitor

import (
	"fmt"
	"math"
	"time"

	"memca/internal/stats"
)

// Alarm is one detection event.
type Alarm struct {
	// At is the sample time that raised the alarm.
	At time.Duration
	// Value is the offending observation.
	Value float64
}

// Detector inspects a sampled signal and reports alarms. Implementations
// model the provider- and user-centric interference detectors the paper's
// stealthiness evaluation bypasses.
type Detector interface {
	// Detect scans the buckets in time order and returns all alarms.
	Detect(buckets []stats.Bucket) []Alarm
	// Name labels the detector in reports.
	Name() string
}

// ThresholdDetector alarms whenever a sampled mean exceeds a fixed level —
// the simplest provider-side check (e.g. "CPU above 90%").
type ThresholdDetector struct {
	// Threshold is the alarm level.
	Threshold float64
	// MinConsecutive requires this many successive breaching samples
	// (debouncing); 0 or 1 alarms on the first.
	MinConsecutive int
}

// Name implements Detector.
func (d ThresholdDetector) Name() string { return "threshold" }

// Detect implements Detector.
func (d ThresholdDetector) Detect(buckets []stats.Bucket) []Alarm {
	need := d.MinConsecutive
	if need < 1 {
		need = 1
	}
	var alarms []Alarm
	run := 0
	for _, b := range buckets {
		if b.Mean > d.Threshold {
			run++
			if run >= need {
				alarms = append(alarms, Alarm{At: b.Start, Value: b.Mean})
				run = 0
			}
		} else {
			run = 0
		}
	}
	return alarms
}

// EWMADetector alarms when an observation deviates from its exponentially
// weighted moving average by more than K running standard deviations — a
// user-centric anomaly detector in the style of DIAL/ICE.
type EWMADetector struct {
	// Alpha is the smoothing factor in (0, 1].
	Alpha float64
	// K is the deviation multiplier.
	K float64
	// Warmup is how many samples prime the baseline before alarms fire.
	Warmup int
}

// Name implements Detector.
func (d EWMADetector) Name() string { return "ewma" }

// Detect implements Detector.
func (d EWMADetector) Detect(buckets []stats.Bucket) []Alarm {
	if d.Alpha <= 0 || d.Alpha > 1 || len(buckets) == 0 {
		return nil
	}
	mean := stats.NewEWMA(d.Alpha)
	varEW := stats.NewEWMA(d.Alpha)
	var alarms []Alarm
	for i, b := range buckets {
		if !mean.Primed() {
			mean.Add(b.Mean)
			varEW.Add(0)
			continue
		}
		prior := mean.Value()
		dev := b.Mean - prior
		sigma := math.Sqrt(varEW.Value())
		if i >= d.Warmup && sigma > 0 && math.Abs(dev) > d.K*sigma {
			alarms = append(alarms, Alarm{At: b.Start, Value: b.Mean})
		}
		mean.Add(b.Mean)
		varEW.Add(dev * dev)
	}
	return alarms
}

// CUSUMDetector wraps the stats.CUSUM change detector: it alarms on a
// sustained upward shift of the signal, the provider-centric approach to
// catching slow interference.
type CUSUMDetector struct {
	// Target is the in-control mean.
	Target float64
	// Slack absorbs benign drift (k).
	Slack float64
	// DecisionThreshold is the alarm level (h).
	DecisionThreshold float64
}

// Name implements Detector.
func (d CUSUMDetector) Name() string { return "cusum" }

// Detect implements Detector.
func (d CUSUMDetector) Detect(buckets []stats.Bucket) []Alarm {
	c := stats.NewCUSUM(d.Target, d.Slack, d.DecisionThreshold)
	var alarms []Alarm
	for _, b := range buckets {
		if c.Add(b.Mean) {
			alarms = append(alarms, Alarm{At: b.Start, Value: b.Mean})
		}
	}
	return alarms
}

// Verify interface compliance.
var (
	_ Detector = ThresholdDetector{}
	_ Detector = EWMADetector{}
	_ Detector = CUSUMDetector{}
)

// Periodicity measures how strongly a series repeats at the given lag via
// the normalized autocorrelation of per-bucket means. It is the analysis
// behind Figure 11: the bus-saturation attack leaves a periodic LLC-miss
// signature at the burst interval, the memory-lock attack does not.
// It returns a value in [-1, 1]; above ~0.3 indicates visible periodicity.
func Periodicity(buckets []stats.Bucket, lag int) (float64, error) {
	if lag <= 0 {
		return 0, fmt.Errorf("monitor: lag must be positive, got %d", lag)
	}
	n := len(buckets)
	if n < lag+2 {
		return 0, fmt.Errorf("monitor: need more than %d buckets for lag %d, got %d", lag+2, lag, n)
	}
	mean := 0.0
	for _, b := range buckets {
		mean += b.Mean
	}
	mean /= float64(n)
	var num, den float64
	for i := 0; i < n; i++ {
		d := buckets[i].Mean - mean
		den += d * d
	}
	if den == 0 {
		return 0, nil
	}
	for i := 0; i+lag < n; i++ {
		num += (buckets[i].Mean - mean) * (buckets[i+lag].Mean - mean)
	}
	return num / den, nil
}

// ToBuckets converts a sampled time series into equal-width buckets so
// detectors and Periodicity can consume live-sampled signals.
func ToBuckets(ts *stats.TimeSeries, width, horizon time.Duration) ([]stats.Bucket, error) {
	if ts == nil {
		return nil, fmt.Errorf("monitor: series must not be nil")
	}
	return ts.Resample(width, horizon)
}
