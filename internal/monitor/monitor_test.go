package monitor

import (
	"testing"
	"time"

	"memca/internal/sim"
	"memca/internal/stats"
)

// burstSource returns a UtilizationSource that is saturated for the first
// `on` of every `period`, idle otherwise, and `base` busy in between — a
// synthetic MemCA utilization signal.
func burstSource(on, period time.Duration, base float64) UtilizationSource {
	b := stats.NewBusyIntegrator()
	for i := 0; i < 600; i++ {
		start := time.Duration(i) * period
		b.SetBusy(start, true)
		b.SetBusy(start+on, false)
	}
	return func(from, to time.Duration) float64 {
		burst := b.Utilization(from, to)
		return burst + (1-burst)*base
	}
}

func TestSamplerGranularityEffect(t *testing.T) {
	// The paper's Figure 10: 500ms bursts every 2s over a 40% base.
	src := burstSource(500*time.Millisecond, 2*time.Second, 0.4)
	horizon := 3 * time.Minute

	collect := func(g time.Duration) []stats.Bucket {
		s, err := NewSampler("cpu", g, src)
		if err != nil {
			t.Fatal(err)
		}
		buckets, err := s.Collect(horizon)
		if err != nil {
			t.Fatal(err)
		}
		return buckets
	}

	coarse := collect(GranularityCloud)
	user := collect(GranularityUser)
	fine := collect(GranularityFine)

	// 1-minute view: flat and moderate (~0.55), never near saturation.
	for _, b := range coarse {
		if b.Mean > 0.7 {
			t.Errorf("1-min bucket at %v = %v, should look moderate", b.Start, b.Mean)
		}
	}
	// 50 ms view: transient saturation clearly visible.
	maxFine := 0.0
	for _, b := range fine {
		if b.Mean > maxFine {
			maxFine = b.Mean
		}
	}
	if maxFine < 0.99 {
		t.Errorf("50ms max = %v, want ~1.0 (millibottleneck visible)", maxFine)
	}
	// 1 s view: in between — some fluctuation, no sustained saturation.
	maxUser := 0.0
	for _, b := range user {
		if b.Mean > maxUser {
			maxUser = b.Mean
		}
	}
	if maxUser >= maxFine || maxUser < 0.5 {
		t.Errorf("1s max = %v, want between coarse and fine", maxUser)
	}
}

func TestSamplerValidation(t *testing.T) {
	src := burstSource(time.Second, 2*time.Second, 0)
	if _, err := NewSampler("x", 0, src); err == nil {
		t.Error("zero granularity accepted")
	}
	if _, err := NewSampler("x", time.Second, nil); err == nil {
		t.Error("nil source accepted")
	}
	s, err := NewSampler("x", time.Second, src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Collect(0); err == nil {
		t.Error("zero horizon accepted")
	}
	if s.Name() != "x" || s.Granularity() != time.Second {
		t.Error("accessors wrong")
	}
	if got := s.SamplesPerMinute(); got != 60 {
		t.Errorf("SamplesPerMinute = %v, want 60", got)
	}
}

func TestAutoScalerNotTriggeredByMemCA(t *testing.T) {
	// The stealthiness headline: the MemCA signal never trips the 85%
	// 1-minute trigger even though the instantaneous signal saturates.
	src := burstSource(500*time.Millisecond, 2*time.Second, 0.4)
	a, err := NewAutoScaler(DefaultAutoScaler())
	if err != nil {
		t.Fatal(err)
	}
	events, err := a.Evaluate(src, 10*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 0 {
		t.Errorf("MemCA triggered auto scaling %d times", len(events))
	}
}

func TestAutoScalerTriggeredBySustainedLoad(t *testing.T) {
	// A brute-force attack (sustained saturation) does trigger scaling —
	// the contrast that makes MemCA's on-off pattern the point.
	src := func(from, to time.Duration) float64 { return 0.95 }
	a, err := NewAutoScaler(DefaultAutoScaler())
	if err != nil {
		t.Fatal(err)
	}
	events, err := a.Evaluate(src, 10*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("sustained saturation did not trigger scaling")
	}
	// Cooldown: 10 minutes of breach with 5-minute cooldown → 2 events.
	if len(events) != 2 {
		t.Errorf("got %d scale events, want 2 (cooldown)", len(events))
	}
	if events[0].At != time.Minute {
		t.Errorf("first event at %v, want 1m", events[0].At)
	}
}

func TestAutoScalerConsecutivePeriods(t *testing.T) {
	cfg := DefaultAutoScaler()
	cfg.ConsecutivePeriods = 3
	a, err := NewAutoScaler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	buckets := []stats.Bucket{
		{Start: 0, Mean: 0.9},
		{Start: time.Minute, Mean: 0.9},
		{Start: 2 * time.Minute, Mean: 0.5}, // breaks the run
		{Start: 3 * time.Minute, Mean: 0.9},
		{Start: 4 * time.Minute, Mean: 0.9},
		{Start: 5 * time.Minute, Mean: 0.9},
	}
	events := a.EvaluateBuckets(buckets)
	if len(events) != 1 {
		t.Fatalf("got %d events, want 1", len(events))
	}
	if events[0].At != 6*time.Minute {
		t.Errorf("event at %v, want 6m", events[0].At)
	}
}

func TestAutoScalerValidation(t *testing.T) {
	bad := []AutoScalerConfig{
		{Threshold: 0, Period: time.Minute, ConsecutivePeriods: 1},
		{Threshold: 1.5, Period: time.Minute, ConsecutivePeriods: 1},
		{Threshold: 0.8, Period: 0, ConsecutivePeriods: 1},
		{Threshold: 0.8, Period: time.Minute, ConsecutivePeriods: 0},
		{Threshold: 0.8, Period: time.Minute, ConsecutivePeriods: 1, Cooldown: -time.Second},
	}
	for i, cfg := range bad {
		if _, err := NewAutoScaler(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	a, err := NewAutoScaler(DefaultAutoScaler())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Evaluate(nil, time.Minute); err == nil {
		t.Error("nil source accepted")
	}
}

func TestThresholdDetectorGranularityDependence(t *testing.T) {
	// The same signal alarms at fine granularity and stays silent at
	// coarse granularity — the core of the evasion argument.
	src := burstSource(500*time.Millisecond, 2*time.Second, 0.4)
	det := ThresholdDetector{Threshold: 0.9}

	collect := func(g time.Duration) []stats.Bucket {
		s, err := NewSampler("cpu", g, src)
		if err != nil {
			t.Fatal(err)
		}
		b, err := s.Collect(2 * time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if alarms := det.Detect(collect(GranularityCloud)); len(alarms) != 0 {
		t.Errorf("coarse monitoring alarmed %d times", len(alarms))
	}
	if alarms := det.Detect(collect(GranularityFine)); len(alarms) == 0 {
		t.Error("fine monitoring missed the millibottlenecks")
	}
}

func TestThresholdDetectorDebounce(t *testing.T) {
	det := ThresholdDetector{Threshold: 0.5, MinConsecutive: 3}
	buckets := []stats.Bucket{
		{Mean: 0.9}, {Mean: 0.9}, {Mean: 0.1}, // run of 2: no alarm
		{Mean: 0.9}, {Mean: 0.9}, {Mean: 0.9}, // run of 3: alarm
	}
	alarms := det.Detect(buckets)
	if len(alarms) != 1 {
		t.Errorf("got %d alarms, want 1", len(alarms))
	}
}

func TestEWMADetector(t *testing.T) {
	det := EWMADetector{Alpha: 0.3, K: 4, Warmup: 10}
	var buckets []stats.Bucket
	for i := 0; i < 50; i++ {
		v := 0.5 + 0.01*float64(i%3) // mild noise
		buckets = append(buckets, stats.Bucket{Start: time.Duration(i) * time.Second, Mean: v})
	}
	if alarms := det.Detect(buckets); len(alarms) != 0 {
		t.Errorf("EWMA alarmed on steady signal: %d", len(alarms))
	}
	buckets = append(buckets, stats.Bucket{Start: 51 * time.Second, Mean: 0.99})
	alarms := det.Detect(buckets)
	if len(alarms) == 0 {
		t.Error("EWMA missed an obvious spike")
	}
}

func TestEWMADetectorDegenerateInputs(t *testing.T) {
	det := EWMADetector{Alpha: 0, K: 3}
	if alarms := det.Detect([]stats.Bucket{{Mean: 1}}); alarms != nil {
		t.Error("invalid alpha should detect nothing")
	}
	det = EWMADetector{Alpha: 0.5, K: 3}
	if alarms := det.Detect(nil); alarms != nil {
		t.Error("empty input should detect nothing")
	}
}

func TestCUSUMDetectorShift(t *testing.T) {
	det := CUSUMDetector{Target: 0.5, Slack: 0.05, DecisionThreshold: 0.5}
	var buckets []stats.Bucket
	for i := 0; i < 60; i++ {
		buckets = append(buckets, stats.Bucket{Start: time.Duration(i) * time.Second, Mean: 0.5})
	}
	if alarms := det.Detect(buckets); len(alarms) != 0 {
		t.Errorf("CUSUM alarmed in control: %d", len(alarms))
	}
	for i := 60; i < 80; i++ {
		buckets = append(buckets, stats.Bucket{Start: time.Duration(i) * time.Second, Mean: 0.65})
	}
	if alarms := det.Detect(buckets); len(alarms) == 0 {
		t.Error("CUSUM missed a sustained shift")
	}
}

func TestPeriodicityDiscriminatesAttacks(t *testing.T) {
	// Synthetic Figure 11: a periodic miss signal (bus saturation) vs. a
	// flat one (memory lock).
	period := 40 // buckets per attack interval
	var periodic, flat []stats.Bucket
	for i := 0; i < 400; i++ {
		v := 1000.0
		if i%period < 5 {
			v = 50000
		}
		periodic = append(periodic, stats.Bucket{Start: time.Duration(i) * 50 * time.Millisecond, Mean: v})
		flat = append(flat, stats.Bucket{Start: time.Duration(i) * 50 * time.Millisecond, Mean: 1000 + float64(i%7)})
	}
	pScore, err := Periodicity(periodic, period)
	if err != nil {
		t.Fatal(err)
	}
	fScore, err := Periodicity(flat, period)
	if err != nil {
		t.Fatal(err)
	}
	if pScore < 0.5 {
		t.Errorf("periodic signal score %v, want > 0.5", pScore)
	}
	if fScore > 0.3 {
		t.Errorf("flat signal score %v, want < 0.3", fScore)
	}
}

func TestPeriodicityValidation(t *testing.T) {
	if _, err := Periodicity(nil, 0); err == nil {
		t.Error("zero lag accepted")
	}
	if _, err := Periodicity([]stats.Bucket{{Mean: 1}}, 5); err == nil {
		t.Error("too-short series accepted")
	}
	constant := make([]stats.Bucket, 20)
	score, err := Periodicity(constant, 5)
	if err != nil {
		t.Fatal(err)
	}
	if score != 0 {
		t.Errorf("constant signal score %v, want 0", score)
	}
}

// TestPeriodicityLagEdgeCases pins the lag bounds and the exact
// autocorrelation values on an alternating 0/1 signal of 6 buckets
// (mean 0.5, every deviation ±0.5, denominator 6·0.25 = 1.5).
func TestPeriodicityLagEdgeCases(t *testing.T) {
	alternating := []stats.Bucket{
		{Mean: 0}, {Mean: 1}, {Mean: 0}, {Mean: 1}, {Mean: 0}, {Mean: 1},
	}
	cases := []struct {
		name    string
		lag     int
		want    float64
		wantErr bool
	}{
		{"lag zero", 0, 0, true},
		{"lag negative", -3, 0, true},
		// lag 1: 5 adjacent pairs, each -0.25 → -1.25/1.5.
		{"lag one antiphase", 1, -5.0 / 6.0, false},
		// lag 2: 4 in-phase pairs, each +0.25 → 1/1.5.
		{"lag two in phase", 2, 2.0 / 3.0, false},
		// lag n-2 is the largest legal lag: 2 pairs → 0.5/1.5.
		{"lag len minus two", 4, 1.0 / 3.0, false},
		{"lag len minus one", 5, 0, true},
		{"lag equals len", 6, 0, true},
		{"lag beyond len", 10, 0, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := Periodicity(alternating, tc.lag)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("lag %d accepted, got %v", tc.lag, got)
				}
				return
			}
			if err != nil {
				t.Fatalf("lag %d: %v", tc.lag, err)
			}
			if diff := got - tc.want; diff > 1e-12 || diff < -1e-12 {
				t.Errorf("lag %d score = %v, want %v", tc.lag, got, tc.want)
			}
		})
	}
}

func TestPeriodicSampler(t *testing.T) {
	e := sim.NewEngine(1)
	val := 0.0
	p, err := NewPeriodicSampler(e, "gauge", 100*time.Millisecond, func() float64 { return val })
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	e.Schedule(time.Second, func() { val = 5 })
	e.Run(2 * time.Second)
	p.Stop()
	e.Run(3 * time.Second)

	pts := p.Series().Points
	if len(pts) < 19 || len(pts) > 22 {
		t.Fatalf("got %d samples in 2s at 100ms, want ~21", len(pts))
	}
	if pts[0].V != 0 {
		t.Errorf("first sample %v, want 0", pts[0].V)
	}
	last := pts[len(pts)-1]
	if last.V != 5 {
		t.Errorf("last sample %v, want 5", last.V)
	}
	// Stopped: no samples past 2s + one period.
	for _, pt := range pts {
		if pt.T > 2100*time.Millisecond {
			t.Errorf("sample after Stop at %v", pt.T)
		}
	}
}

func TestPeriodicSamplerValidation(t *testing.T) {
	e := sim.NewEngine(1)
	g := func() float64 { return 0 }
	if _, err := NewPeriodicSampler(nil, "x", time.Second, g); err == nil {
		t.Error("nil engine accepted")
	}
	if _, err := NewPeriodicSampler(e, "x", 0, g); err == nil {
		t.Error("zero period accepted")
	}
	if _, err := NewPeriodicSampler(e, "x", time.Second, nil); err == nil {
		t.Error("nil gauge accepted")
	}
}

func TestToBuckets(t *testing.T) {
	ts := stats.NewTimeSeries("x")
	ts.Add(0, 1)
	ts.Add(time.Second, 2)
	buckets, err := ToBuckets(ts, time.Second, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(buckets) != 2 {
		t.Errorf("got %d buckets", len(buckets))
	}
	if _, err := ToBuckets(nil, time.Second, time.Second); err == nil {
		t.Error("nil series accepted")
	}
}
