// Package monitor models the observation side of the paper's stealthiness
// study: utilization samplers at cloud-realistic granularities (50 ms,
// 1 s, 1 min), a CloudWatch-style auto-scaling trigger, provider- and
// user-centric interference detectors, and an OProfile-style LLC-miss
// profiler. The attack succeeds exactly when these instruments, at the
// granularity the cloud can afford, see nothing actionable.
package monitor

import (
	"fmt"
	"time"

	"memca/internal/sim"
	"memca/internal/stats"
)

// Cloud-realistic sampling granularities (Section V-B).
const (
	// GranularityFine is the research-grade 50 ms sampling that exposes
	// millibottlenecks (Figure 10c).
	GranularityFine = 50 * time.Millisecond
	// GranularityUser is the 1 s sampling an attentive tenant can afford
	// (Figure 10b).
	GranularityUser = time.Second
	// GranularityCloud is CloudWatch's 1-minute period (Figure 10a).
	GranularityCloud = time.Minute
)

// UtilizationSource yields exact utilization over an arbitrary window; the
// queueing simulator's busy integrators satisfy it.
type UtilizationSource func(from, to time.Duration) float64

// Sampler resamples a utilization source at a fixed granularity, modelling
// what a monitoring agent of that period would report.
type Sampler struct {
	name        string
	granularity time.Duration
	source      UtilizationSource
}

// NewSampler builds a sampler.
func NewSampler(name string, granularity time.Duration, source UtilizationSource) (*Sampler, error) {
	if granularity <= 0 {
		return nil, fmt.Errorf("monitor: granularity must be positive, got %v", granularity)
	}
	if source == nil {
		return nil, fmt.Errorf("monitor: source must not be nil")
	}
	return &Sampler{name: name, granularity: granularity, source: source}, nil
}

// Name returns the sampler's label.
func (s *Sampler) Name() string { return s.name }

// Granularity returns the sampling period.
func (s *Sampler) Granularity() time.Duration { return s.granularity }

// Collect returns one bucket per period over [0, horizon).
func (s *Sampler) Collect(horizon time.Duration) ([]stats.Bucket, error) {
	if horizon <= 0 {
		return nil, fmt.Errorf("monitor: horizon must be positive, got %v", horizon)
	}
	n := int((horizon + s.granularity - 1) / s.granularity)
	out := make([]stats.Bucket, 0, n)
	for i := 0; i < n; i++ {
		from := time.Duration(i) * s.granularity
		to := from + s.granularity
		if to > horizon {
			to = horizon
		}
		u := s.source(from, to)
		out = append(out, stats.Bucket{Start: from, Mean: u, Max: u, Min: u, Count: 1})
	}
	return out, nil
}

// SamplesPerMinute returns the sampling rate, the driver of monitoring
// overhead (providers budget under 1% — the reason CloudWatch samples at
// one minute and the attack window exists).
func (s *Sampler) SamplesPerMinute() float64 {
	return float64(time.Minute) / float64(s.granularity)
}

// PeriodicSampler evaluates an instantaneous gauge on the simulation
// engine every period, for signals that must be observed live (e.g. LLC
// miss rates that depend on the attack phase).
type PeriodicSampler struct {
	engine  *sim.Engine
	period  time.Duration
	gauge   func() float64
	series  *stats.TimeSeries
	running bool
}

// NewPeriodicSampler builds a live sampler; Start begins sampling.
func NewPeriodicSampler(engine *sim.Engine, name string, period time.Duration, gauge func() float64) (*PeriodicSampler, error) {
	if engine == nil {
		return nil, fmt.Errorf("monitor: engine must not be nil")
	}
	if period <= 0 {
		return nil, fmt.Errorf("monitor: period must be positive, got %v", period)
	}
	if gauge == nil {
		return nil, fmt.Errorf("monitor: gauge must not be nil")
	}
	return &PeriodicSampler{
		engine: engine,
		period: period,
		gauge:  gauge,
		series: stats.NewTimeSeries(name),
	}, nil
}

// Start begins periodic sampling. It is idempotent while running.
func (p *PeriodicSampler) Start() {
	if p.running {
		return
	}
	p.running = true
	p.tick()
}

// Stop halts sampling after the current tick.
func (p *PeriodicSampler) Stop() { p.running = false }

func (p *PeriodicSampler) tick() {
	if !p.running {
		return
	}
	p.series.Add(p.engine.Now(), p.gauge())
	p.engine.Schedule(p.period, p.tick)
}

// Series returns the collected samples (shared; do not mutate).
func (p *PeriodicSampler) Series() *stats.TimeSeries { return p.series }
