package monitor

import (
	"memca/internal/stats"
	"memca/internal/telemetry"
)

// FeatureDetector inspects a per-window attribution feature stream instead
// of a sampled utilization signal. It is the detector variant the paper's
// stealthiness result motivates: MemCA hides from every CPU-signal
// detector, but the resource actually amplifying latency — retransmission
// wait — is visible per window in the tracer's feature series.
type FeatureDetector interface {
	// DetectFeatures scans the series' windows in time order and returns
	// all alarms.
	DetectFeatures(fs *telemetry.FeatureSeries) []Alarm
	// Name labels the detector in reports.
	Name() string
}

// AttributionDetector alarms on windows whose retransmission-wait share
// exceeds a threshold. Flash crowds and other benign overloads keep this
// share near zero (their tails are queue- and service-dominated), so a
// threshold tuned by TuneAttribution separates MemCA from organic load
// where CPU sampling cannot.
type AttributionDetector struct {
	// ShareThreshold is the retransmission-wait share above which a
	// window alarms.
	ShareThreshold float64
	// MinCount skips windows with fewer closed traces: a near-empty
	// window's share is one retransmitted straggler away from 1.0.
	MinCount int
}

// Name implements FeatureDetector.
func (d AttributionDetector) Name() string { return "attribution" }

// DetectFeatures implements FeatureDetector.
func (d AttributionDetector) DetectFeatures(fs *telemetry.FeatureSeries) []Alarm {
	if fs == nil {
		return nil
	}
	var alarms []Alarm
	for i, w := range fs.Windows() {
		if w.Count < d.MinCount {
			continue
		}
		if share := w.RetransShare(); share > d.ShareThreshold {
			alarms = append(alarms, Alarm{At: fs.WindowStart(i), Value: share})
		}
	}
	return alarms
}

// featureBridge adapts a FeatureDetector bound to one feature series onto
// the bucket-based Detector interface.
type featureBridge struct {
	d  FeatureDetector
	fs *telemetry.FeatureSeries
}

// BridgeFeatures binds a FeatureDetector to a feature series so it can
// stand in the same detector lineup as the CPU-signal detectors: Detect
// ignores the sampled buckets and scans the bound series instead.
func BridgeFeatures(d FeatureDetector, fs *telemetry.FeatureSeries) Detector {
	return featureBridge{d: d, fs: fs}
}

// Name implements Detector.
func (b featureBridge) Name() string { return b.d.Name() }

// Detect implements Detector.
func (b featureBridge) Detect(_ []stats.Bucket) []Alarm { return b.d.DetectFeatures(b.fs) }

// Verify interface compliance.
var (
	_ FeatureDetector = AttributionDetector{}
	_ Detector        = featureBridge{}
)
