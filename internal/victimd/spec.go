package victimd

import (
	"fmt"

	"memca/internal/spec"
)

// SystemFromSpec maps a 3-tier capacity spec onto the live chain: each
// tier's pooled thread count (threads × replicas, the Q_i of the model)
// becomes that tier's worker pool, and the per-request service time
// carries over directly. This is the bridge that lets a sizing chosen by
// the capacity planner be stood up as a real localhost system and probed
// with the MemCA-FE/BE framework.
//
// Only the tier count and pool shape are checked here; StartSystem
// re-validates the descending-pool condition after any manual edits. The
// spec's demand factors describe per-tier visit ratios in the open
// queueing model and have no live analogue — victimd's chain visits every
// tier exactly once per request.
func SystemFromSpec(sys spec.System) (SystemConfig, error) {
	if err := sys.Validate(); err != nil {
		return SystemConfig{}, fmt.Errorf("victimd: %w", err)
	}
	if len(sys.Tiers) != 3 {
		return SystemConfig{}, fmt.Errorf("victimd: live chain is web/app/db; spec has %d tiers, want 3", len(sys.Tiers))
	}
	if err := sys.CheckCondition1(); err != nil {
		return SystemConfig{}, fmt.Errorf("victimd: %w", err)
	}
	web, app, db := sys.Tiers[0], sys.Tiers[1], sys.Tiers[2]
	return SystemConfig{
		WebWorkers: web.PooledThreads(), AppWorkers: app.PooledThreads(), DBWorkers: db.PooledThreads(),
		WebService: web.Service, AppService: app.Service, DBService: db.Service,
	}, nil
}
