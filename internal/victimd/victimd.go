// Package victimd implements a miniature but real 3-tier web system over
// HTTP on localhost: a web tier, an app tier, and a db tier, each a real
// HTTP server with a bounded worker pool (the Q_i of the queueing model)
// and a configurable service time, chained by synchronous HTTP calls
// exactly like the RPC coupling the paper studies. It exists so the
// MemCA-FE/BE framework (cmd/memca-fe, cmd/memca-be) has a live target to
// probe, and so the cross-tier back-pressure mechanics can be observed on
// a real network stack: fill the db tier's pool and watch the web tier's
// connections stall and get rejected.
//
// The db tier exposes a capacity control endpoint (/control/capacity) that
// scales its service time — the hook an attack driver uses to emulate the
// millibottleneck on a machine where real memory contention is not
// available or not desired.
package victimd

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"memca/internal/telemetry/live"
)

// TierConfig describes one tier of the live system.
type TierConfig struct {
	// Name labels the tier.
	Name string
	// Workers bounds concurrent requests (the thread pool, Q_i).
	Workers int
	// Service is the tier's local processing time at full capacity.
	Service time.Duration
	// Backend is the downstream tier's URL; empty for the last tier.
	Backend string
	// AcquireTimeout is how long a request waits for a worker slot
	// before being shed (the TCP accept queue's patience). Zero sheds
	// immediately.
	AcquireTimeout time.Duration
	// Trace, when non-nil, receives causal span events for requests that
	// carry trace context (the live analogue of the simulator's
	// queueing.Observer). Requests without a trace header are served but
	// not traced. Nil disables tracing with zero overhead beyond one
	// nil check per lifecycle point.
	Trace *live.Collector
	// TierIndex is this tier's index in the collector's tier-name table;
	// only meaningful when Trace is set.
	TierIndex int
}

// Validate reports the first tier error, or nil.
func (c TierConfig) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("victimd: tier name must not be empty")
	}
	if c.Workers <= 0 {
		return fmt.Errorf("victimd: tier %q workers must be positive, got %d", c.Name, c.Workers)
	}
	if c.Service < 0 {
		return fmt.Errorf("victimd: tier %q service must be non-negative, got %v", c.Name, c.Service)
	}
	if c.Trace != nil {
		if names := c.Trace.TierNames(); c.TierIndex < 0 || c.TierIndex >= len(names) {
			return fmt.Errorf("victimd: tier %q trace index %d out of range [0,%d)", c.Name, c.TierIndex, len(names))
		}
	}
	return nil
}

// Tier is one running tier server.
type Tier struct {
	cfg      TierConfig
	listener net.Listener
	server   *http.Server
	client   *http.Client
	okBody   []byte

	// slots is the worker-pool semaphore; acquisition is non-blocking:
	// a full pool rejects with 503, modelling the finite accept queue.
	slots chan struct{}
	// slowdown scales the service time (1000 = 1.0x), adjusted through
	// the control endpoint. Stored as millis to stay atomic.
	slowdown atomic.Int64

	// Always-on aggregate counters — the coarse view an operator's
	// monitoring would see, deliberately cheaper and blinder than the
	// per-request trace (the paper's detection-blindness contrast).
	served      atomic.Int64
	rejected    atomic.Int64
	inflight    atomic.Int64
	queueWaitNs atomic.Int64
	serviceNs   atomic.Int64

	// features is the always-on windowed feature tracker: the same
	// per-window detection features the simulator's tracer streams,
	// aggregated over wall-clock windows from what this tier can observe
	// (its own queue wait, service time, and sheds — retransmission wait
	// is only attributable across tiers, by the trace collector).
	features *live.WindowTracker
}

// featureWindow is the tier tracker's wall-clock window width. One second
// matches the user-facing monitoring granularity the paper argues is too
// coarse for CPU signals — the point of the feature counters is that the
// attribution features stay discriminative even at this width.
const featureWindow = time.Second

// featureTailOver is the tier-local response-time threshold counted by
// the tail_over feature — a per-tier SLO stand-in for the client-side 1 s
// damage goal.
const featureTailOver = 100 * time.Millisecond

// StartTier binds a tier to addr (":0" for an ephemeral port) and serves
// in a background goroutine until Close.
func StartTier(addr string, cfg TierConfig) (*Tier, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("victimd: listen %s: %w", addr, err)
	}
	features, err := live.NewWindowTracker(featureWindow, featureTailOver)
	if err != nil {
		_ = ln.Close()
		return nil, err
	}
	t := &Tier{
		cfg:      cfg,
		listener: ln,
		client:   &http.Client{Timeout: 10 * time.Second},
		okBody:   []byte(cfg.Name + " ok\n"),
		slots:    make(chan struct{}, cfg.Workers),
		features: features,
	}
	t.slowdown.Store(1000)
	mux := http.NewServeMux()
	mux.HandleFunc("/", t.handle)
	mux.HandleFunc("/control/capacity", t.handleCapacity)
	mux.HandleFunc("/stats", t.handleStats)
	mux.HandleFunc("/debug/counters", t.handleCounters)
	t.server = &http.Server{Handler: mux}
	go func() {
		if err := t.server.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			// The tier is torn down by Close; other serve errors are
			// fatal for a daemon but must not crash a test host.
			fmt.Printf("victimd: tier %s serve: %v\n", cfg.Name, err)
		}
	}()
	return t, nil
}

// URL returns the tier's base URL.
func (t *Tier) URL() string { return "http://" + t.listener.Addr().String() }

// Served returns the number of requests completed.
func (t *Tier) Served() int64 { return t.served.Load() }

// Rejected returns the number of requests shed by the full pool.
func (t *Tier) Rejected() int64 { return t.rejected.Load() }

// SetCapacityMultiplier scales the tier's service rate: 0.1 means work
// takes 10x longer (the MemCA millibottleneck lever).
func (t *Tier) SetCapacityMultiplier(m float64) error {
	if m <= 0 || m > 1 || math.IsNaN(m) {
		return fmt.Errorf("victimd: multiplier must be in (0,1], got %v", m)
	}
	t.slowdown.Store(int64(1000 / m))
	return nil
}

// Close shuts the tier down.
func (t *Tier) Close() error {
	return t.server.Close()
}

func (t *Tier) handle(w http.ResponseWriter, r *http.Request) {
	// Trace context rides in on the request header; requests without it
	// (or with tracing disabled) take the identical path minus recording.
	var traceID uint64
	var attempt int
	traced := false
	if t.cfg.Trace != nil {
		traceID, attempt, traced = live.ParseTraceHeader(r.Header.Get(live.TraceHeader))
	}
	if traced {
		t.cfg.Trace.Record(traceID, live.KindTierRequest, t.cfg.TierIndex, attempt, 0)
	}

	enq := time.Now()
	if !t.acquire(r.Context()) {
		t.rejected.Add(1)
		waited := time.Since(enq)
		t.features.Observe(time.Now(), waited, waited, 0, 0, 1, 1)
		if traced {
			t.cfg.Trace.Record(traceID, live.KindDrop, t.cfg.TierIndex, attempt, 0)
		}
		http.Error(w, "pool exhausted", http.StatusServiceUnavailable)
		return
	}
	wait := time.Since(enq)
	t.queueWaitNs.Add(wait.Nanoseconds())
	t.inflight.Add(1)
	defer func() {
		t.inflight.Add(-1)
		<-t.slots
	}()

	if traced {
		t.cfg.Trace.Record(traceID, live.KindServiceStart, t.cfg.TierIndex, attempt, 0)
	}
	svcStart := time.Now()
	// Local work, stretched by the current slowdown.
	d := time.Duration(float64(t.cfg.Service) * float64(t.slowdown.Load()) / 1000)
	if d > 0 {
		select {
		case <-time.After(d):
		case <-r.Context().Done():
			// The caller hung up mid-service; close the span so the trace
			// never reports an orphan service interval.
			svc := time.Since(svcStart)
			t.serviceNs.Add(svc.Nanoseconds())
			t.features.Observe(time.Now(), time.Since(enq), wait, svc, 0, 1, 0)
			if traced {
				t.cfg.Trace.Record(traceID, live.KindServiceEnd, t.cfg.TierIndex, attempt, 0)
			}
			return
		}
	}
	svc := time.Since(svcStart)
	t.serviceNs.Add(svc.Nanoseconds())
	if traced {
		t.cfg.Trace.Record(traceID, live.KindServiceEnd, t.cfg.TierIndex, attempt, 0)
	}

	// Synchronous downstream call while holding the worker slot — the
	// RPC coupling that propagates back-pressure upstream. The time spent
	// here is attributed at the downstream tier, not this one.
	if t.cfg.Backend != "" {
		req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, t.cfg.Backend, nil)
		if err != nil {
			t.features.Observe(time.Now(), time.Since(enq), wait, svc, 0, 1, 1)
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if traced {
			req.Header.Set(live.TraceHeader, live.FormatTraceHeader(traceID, attempt))
		}
		resp, err := t.client.Do(req)
		if err != nil {
			t.features.Observe(time.Now(), time.Since(enq), wait, svc, 0, 1, 1)
			http.Error(w, "backend unreachable", http.StatusBadGateway)
			return
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		status := resp.StatusCode
		if err := resp.Body.Close(); err != nil {
			t.features.Observe(time.Now(), time.Since(enq), wait, svc, 0, 1, 1)
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if status != http.StatusOK {
			// The downstream tier shed or choked on this request: a drop
			// from this tier's vantage point, whatever the exact cause.
			t.features.Observe(time.Now(), time.Since(enq), wait, svc, 0, 1, 1)
			http.Error(w, "backend congested", http.StatusBadGateway)
			return
		}
	}
	if traced {
		t.cfg.Trace.Record(traceID, live.KindTierRespond, t.cfg.TierIndex, attempt, 0)
	}
	t.served.Add(1)
	t.features.Observe(time.Now(), time.Since(enq), wait, svc, 0, 1, 0)
	w.WriteHeader(http.StatusOK)
	if _, err := w.Write(t.okBody); err != nil {
		return
	}
}

// acquire takes a worker slot, waiting up to the configured timeout. It
// reports whether the slot was obtained.
func (t *Tier) acquire(ctx context.Context) bool {
	select {
	case t.slots <- struct{}{}:
		return true
	default:
	}
	if t.cfg.AcquireTimeout <= 0 {
		return false
	}
	select {
	case t.slots <- struct{}{}:
		return true
	case <-time.After(t.cfg.AcquireTimeout):
		return false
	case <-ctx.Done():
		return false
	}
}

func (t *Tier) handleCapacity(w http.ResponseWriter, r *http.Request) {
	raw := r.URL.Query().Get("multiplier")
	m, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		http.Error(w, "multiplier must be a float", http.StatusBadRequest)
		return
	}
	if err := t.SetCapacityMultiplier(m); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.WriteHeader(http.StatusOK)
}

// handleCounters serves the always-on aggregate counters as plaintext
// "name value" lines (expvar-style, but grep/awk-friendly). This is the
// coarse operator view the paper contrasts with per-request tracing: it
// shows load and shedding totals but cannot attribute any single slow
// request to a cause.
func (t *Tier) handleCounters(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	body := fmt.Sprintf(
		"victimd.tier %s\n"+
			"victimd.workers %d\n"+
			"victimd.served %d\n"+
			"victimd.rejected %d\n"+
			"victimd.inflight %d\n"+
			"victimd.queue_wait_ns_total %d\n"+
			"victimd.service_ns_total %d\n"+
			"victimd.slowdown_permille %d\n",
		t.cfg.Name, t.cfg.Workers, t.served.Load(), t.rejected.Load(),
		t.inflight.Load(), t.queueWaitNs.Load(), t.serviceNs.Load(),
		t.slowdown.Load())
	// The last completed feature window — the per-window attribution view
	// the aggregate totals above cannot provide. Absent until the first
	// window closes.
	if feat, start, ok := t.features.Last(time.Now()); ok {
		body += fmt.Sprintf(
			"victimd.feat_window_ms %d\n"+
				"victimd.feat_window_start_ms %d\n"+
				"victimd.feat_count %d\n"+
				"victimd.feat_attempts %d\n"+
				"victimd.feat_drops %d\n"+
				"victimd.feat_tail_over %d\n"+
				"victimd.feat_drop_rate %.4f\n"+
				"victimd.feat_queue_share %.4f\n"+
				"victimd.feat_service_share %.4f\n"+
				"victimd.feat_mean_rt_us %d\n",
			t.features.Res().Milliseconds(), start.Milliseconds(),
			feat.Count, feat.Attempts, feat.Drops, feat.TailOver,
			feat.DropRate(), feat.QueueShare(), feat.ServiceShare(),
			feat.MeanRT().Microseconds())
	}
	if _, err := io.WriteString(w, body); err != nil {
		// The client disconnected mid-response; nothing left to do.
		return
	}
}

func (t *Tier) handleStats(w http.ResponseWriter, _ *http.Request) {
	body := fmt.Sprintf(`{"name":%q,"served":%d,"rejected":%d,"slowdown_permille":%d}`+"\n",
		t.cfg.Name, t.served.Load(), t.rejected.Load(), t.slowdown.Load())
	if _, err := io.WriteString(w, body); err != nil {
		// The client disconnected mid-response; the connection is gone,
		// so there is nobody left to report the failure to.
		return
	}
}

// System is a running 3-tier chain.
type System struct {
	Web, App, DB *Tier
}

// SystemConfig sizes the live 3-tier chain.
type SystemConfig struct {
	// WebWorkers/AppWorkers/DBWorkers are the per-tier pools; they must
	// descend (condition 1 of the model).
	WebWorkers, AppWorkers, DBWorkers int
	// WebService/AppService/DBService are per-tier local service times.
	WebService, AppService, DBService time.Duration
	// Trace, when non-nil, instruments all three tiers into one shared
	// collector with tier indices web=0, app=1, db=2. The collector's
	// tier-name table must have at least three entries (in that order) —
	// use TierNames for the canonical labels.
	Trace *live.Collector
}

// TierNames returns the canonical tier labels in trace-index order, the
// table to size a live.Collector with when tracing a System.
func TierNames() []string { return []string{"web", "app", "db"} }

// DefaultSystem returns a laptop-scale chain mirroring the simulation's
// proportions.
func DefaultSystem() SystemConfig {
	return SystemConfig{
		WebWorkers: 32, AppWorkers: 16, DBWorkers: 8,
		WebService: 200 * time.Microsecond,
		AppService: 500 * time.Microsecond,
		DBService:  2 * time.Millisecond,
	}
}

// StartSystem launches db, app, and web tiers on ephemeral localhost
// ports, chained back to front.
func StartSystem(cfg SystemConfig) (*System, error) {
	if cfg.WebWorkers <= cfg.AppWorkers || cfg.AppWorkers <= cfg.DBWorkers {
		return nil, fmt.Errorf("victimd: worker pools must descend front to back (got %d/%d/%d)",
			cfg.WebWorkers, cfg.AppWorkers, cfg.DBWorkers)
	}
	const patience = 20 * time.Millisecond
	db, err := StartTier("127.0.0.1:0", TierConfig{
		Name: "db", Workers: cfg.DBWorkers, Service: cfg.DBService, AcquireTimeout: patience,
		Trace: cfg.Trace, TierIndex: 2,
	})
	if err != nil {
		return nil, err
	}
	app, err := StartTier("127.0.0.1:0", TierConfig{
		Name: "app", Workers: cfg.AppWorkers, Service: cfg.AppService, Backend: db.URL() + "/", AcquireTimeout: patience,
		Trace: cfg.Trace, TierIndex: 1,
	})
	if err != nil {
		_ = db.Close()
		return nil, err
	}
	web, err := StartTier("127.0.0.1:0", TierConfig{
		Name: "web", Workers: cfg.WebWorkers, Service: cfg.WebService, Backend: app.URL() + "/", AcquireTimeout: patience,
		Trace: cfg.Trace, TierIndex: 0,
	})
	if err != nil {
		_ = db.Close()
		_ = app.Close()
		return nil, err
	}
	return &System{Web: web, App: app, DB: db}, nil
}

// Close tears the chain down, returning the first error.
func (s *System) Close() error {
	var first error
	for _, t := range []*Tier{s.Web, s.App, s.DB} {
		if err := t.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Probe measures one end-to-end request against the web tier; rejected
// requests report the error.
func (s *System) Probe(ctx context.Context) (time.Duration, int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, s.Web.URL()+"/", nil)
	if err != nil {
		return 0, 0, err
	}
	start := time.Now()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, 0, err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	if err := resp.Body.Close(); err != nil {
		return 0, 0, err
	}
	return time.Since(start), resp.StatusCode, nil
}
