package victimd

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"memca/internal/telemetry/live"
)

func newChainCollector(t *testing.T) *live.Collector {
	t.Helper()
	col, err := live.New(live.Config{Tiers: TierNames(), Events: 1 << 16})
	if err != nil {
		t.Fatalf("live.New: %v", err)
	}
	return col
}

func newTracedClient(t *testing.T, col *live.Collector, attempts int, backoff time.Duration) *live.Client {
	t.Helper()
	cl, err := live.NewClient(live.ClientConfig{Collector: col, MaxAttempts: attempts, Backoff: backoff})
	if err != nil {
		t.Fatalf("live.NewClient: %v", err)
	}
	return cl
}

// waitInflight polls a tier's /debug/counters endpoint until its inflight
// gauge reaches want (also exercising the counters format).
func waitInflight(t *testing.T, tier *Tier, want int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(tier.URL() + "/debug/counters")
		if err != nil {
			t.Fatalf("counters fetch: %v", err)
		}
		body, err := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		if err != nil {
			t.Fatalf("counters read: %v", err)
		}
		for _, line := range strings.Split(string(body), "\n") {
			if f := strings.Fields(line); len(f) == 2 && f[0] == "victimd.inflight" && f[1] != "0" {
				if f[1] == "1" && want == 1 {
					return
				}
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("tier %s never reached inflight=%d", tier.cfg.Name, want)
}

// TestTraceSurvivesChain drives traced requests end to end through a real
// web→app→db socket chain and checks the trace ID propagated: every
// closed trace carries service time in all three tiers, no span is left
// open, and the assembled report feeds the shared exporters.
func TestTraceSurvivesChain(t *testing.T) {
	col := newChainCollector(t)
	cfg := DefaultSystem()
	cfg.Trace = col
	sys, err := StartSystem(cfg)
	if err != nil {
		t.Fatalf("StartSystem: %v", err)
	}
	defer func() { _ = sys.Close() }()

	cl := newTracedClient(t, col, 1, 0)
	const n = 20
	for i := 0; i < n; i++ {
		res := cl.Get(context.Background(), sys.Web.URL()+"/")
		if !res.OK {
			t.Fatalf("request %d failed: status=%d err=%v", i, res.Status, res.Err)
		}
	}

	rep := col.Report()
	if rep.Open != 0 || rep.Orphans != 0 || rep.DroppedEvents != 0 {
		t.Fatalf("open=%d orphans=%d dropped=%d, want all zero", rep.Open, rep.Orphans, rep.DroppedEvents)
	}
	if len(rep.Attributions) != n {
		t.Fatalf("closed traces = %d, want %d", len(rep.Attributions), n)
	}
	for _, a := range rep.Attributions {
		if a.Abandoned || a.Drops != 0 || a.Attempts != 1 {
			t.Errorf("trace %d: unexpected failure marks %+v", a.TraceID, a)
		}
		for tier, name := range TierNames() {
			if a.Service[tier] <= 0 {
				t.Errorf("trace %d: no service time at %s — trace context lost on that hop", a.TraceID, name)
			}
		}
		if a.RT < a.TotalService() {
			t.Errorf("trace %d: RT %v < total service %v", a.TraceID, a.RT, a.TotalService())
		}
	}
}

// TestTraceShedAtDB occupies the db tier's only worker so a traced
// request is shed at the back of the chain, then retried: the trace must
// record the drop at the db tier, the retransmission wait anchored at it,
// and a clean second attempt — one trace ID across both.
func TestTraceShedAtDB(t *testing.T) {
	col := newChainCollector(t)
	db, err := StartTier("127.0.0.1:0", TierConfig{
		Name: "db", Workers: 1, Service: 150 * time.Millisecond,
		Trace: col, TierIndex: 2,
	})
	if err != nil {
		t.Fatalf("db: %v", err)
	}
	defer func() { _ = db.Close() }()
	app, err := StartTier("127.0.0.1:0", TierConfig{
		Name: "app", Workers: 2, Service: time.Millisecond, Backend: db.URL() + "/",
		Trace: col, TierIndex: 1,
	})
	if err != nil {
		t.Fatalf("app: %v", err)
	}
	defer func() { _ = app.Close() }()
	web, err := StartTier("127.0.0.1:0", TierConfig{
		Name: "web", Workers: 4, Service: time.Millisecond, Backend: app.URL() + "/",
		Trace: col, TierIndex: 0,
	})
	if err != nil {
		t.Fatalf("web: %v", err)
	}
	defer func() { _ = web.Close() }()

	// An untraced request parks in the db tier's single worker slot.
	holder := make(chan error, 1)
	go func() {
		resp, err := http.Get(db.URL() + "/")
		if err == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			err = resp.Body.Close()
		}
		holder <- err
	}()
	waitInflight(t, db, 1)

	cl := newTracedClient(t, col, 2, 250*time.Millisecond)
	res := cl.Get(context.Background(), web.URL()+"/")
	if !res.OK {
		t.Fatalf("retried request should succeed once the slot frees: %+v", res)
	}
	if res.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (shed then served)", res.Attempts)
	}
	if err := <-holder; err != nil {
		t.Fatalf("holder request: %v", err)
	}

	rep := col.Report()
	if rep.Open != 0 || rep.Orphans != 0 {
		t.Fatalf("open=%d orphans=%d, want zero", rep.Open, rep.Orphans)
	}
	if len(rep.Attributions) != 1 {
		t.Fatalf("closed traces = %d, want 1", len(rep.Attributions))
	}
	a := rep.Attributions[0]
	if a.TraceID != res.TraceID {
		t.Errorf("attribution trace %d, client trace %d", a.TraceID, res.TraceID)
	}
	if a.Drops != 1 || a.Attempts != 2 || a.Abandoned {
		t.Errorf("want one drop over two attempts, got %+v", a)
	}
	if a.RetransWait <= 0 {
		t.Errorf("retransWait = %v, want > 0 (shed→retry gap)", a.RetransWait)
	}
	// The drop event itself must sit at the db tier.
	dropTier := -100
	for _, e := range rep.Events {
		if e.Kind == live.KindDrop {
			dropTier = int(e.Tier)
		}
	}
	if dropTier != 2 {
		t.Errorf("drop recorded at tier %d, want 2 (db)", dropTier)
	}
}

// TestTraceRejectAtWeb fills the web tier's pool so a traced request is
// refused at the front door and the client gives up: the trace closes
// abandoned with the drop at tier 0 and no spans deeper in the chain.
func TestTraceRejectAtWeb(t *testing.T) {
	col := newChainCollector(t)
	web, err := StartTier("127.0.0.1:0", TierConfig{
		Name: "web", Workers: 1, Service: 150 * time.Millisecond,
		Trace: col, TierIndex: 0,
	})
	if err != nil {
		t.Fatalf("web: %v", err)
	}
	defer func() { _ = web.Close() }()

	holder := make(chan error, 1)
	go func() {
		resp, err := http.Get(web.URL() + "/")
		if err == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			err = resp.Body.Close()
		}
		holder <- err
	}()
	waitInflight(t, web, 1)

	cl := newTracedClient(t, col, 1, 0)
	res := cl.Get(context.Background(), web.URL()+"/")
	if res.OK || res.Status != http.StatusServiceUnavailable {
		t.Fatalf("want a 503 rejection, got %+v", res)
	}
	if err := <-holder; err != nil {
		t.Fatalf("holder request: %v", err)
	}

	rep := col.Report()
	if rep.Open != 0 || rep.Orphans != 0 {
		t.Fatalf("open=%d orphans=%d, want zero", rep.Open, rep.Orphans)
	}
	if len(rep.Attributions) != 1 {
		t.Fatalf("closed traces = %d, want 1", len(rep.Attributions))
	}
	a := rep.Attributions[0]
	if !a.Abandoned || a.Drops != 1 || a.Attempts != 1 {
		t.Errorf("want abandoned after one front-door drop, got %+v", a)
	}
	for tier := range TierNames() {
		if a.Queue[tier] != 0 || a.Service[tier] != 0 {
			t.Errorf("tier %d has queue/service %v/%v on a rejected request", tier, a.Queue[tier], a.Service[tier])
		}
	}
	for _, e := range rep.Events {
		if int(e.Tier) > 0 {
			t.Errorf("event %v leaked past the web tier (tier %d)", e.Kind, e.Tier)
		}
	}
}

// TestCountersEndpoint checks the plaintext aggregate view: served and
// rejected totals move, and the format stays one "name value" per line.
func TestCountersEndpoint(t *testing.T) {
	tier, err := StartTier("127.0.0.1:0", TierConfig{Name: "solo", Workers: 2, Service: 0})
	if err != nil {
		t.Fatalf("StartTier: %v", err)
	}
	defer func() { _ = tier.Close() }()
	for i := 0; i < 3; i++ {
		resp, err := http.Get(tier.URL() + "/")
		if err != nil {
			t.Fatalf("request: %v", err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}
	resp, err := http.Get(tier.URL() + "/debug/counters")
	if err != nil {
		t.Fatalf("counters: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	got := map[string]string{}
	for _, line := range strings.Split(strings.TrimSpace(string(body)), "\n") {
		f := strings.Fields(line)
		if len(f) != 2 {
			t.Fatalf("counters line %q is not \"name value\"", line)
		}
		got[f[0]] = f[1]
	}
	if got["victimd.tier"] != "solo" || got["victimd.served"] != "3" || got["victimd.rejected"] != "0" {
		t.Errorf("counters = %v", got)
	}
	for _, key := range []string{"victimd.workers", "victimd.inflight", "victimd.queue_wait_ns_total", "victimd.service_ns_total", "victimd.slowdown_permille"} {
		if _, ok := got[key]; !ok {
			t.Errorf("counters missing %s", key)
		}
	}

	// The windowed feature lines appear once a window completes. On a
	// fresh tier, an observation backdated by 1.5 windows anchors the
	// epoch in the past, so the counters read finds window 0 complete.
	feat, err := StartTier("127.0.0.1:0", TierConfig{Name: "feat", Workers: 2, Service: 0})
	if err != nil {
		t.Fatalf("StartTier: %v", err)
	}
	defer func() { _ = feat.Close() }()
	feat.features.Observe(time.Now().Add(-3*featureWindow/2),
		150*time.Millisecond, 100*time.Millisecond, 50*time.Millisecond, 0, 2, 1)
	resp, err = http.Get(feat.URL() + "/debug/counters")
	if err != nil {
		t.Fatalf("counters: %v", err)
	}
	body, err = io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	got = map[string]string{}
	for _, line := range strings.Split(strings.TrimSpace(string(body)), "\n") {
		f := strings.Fields(line)
		if len(f) != 2 {
			t.Fatalf("counters line %q is not \"name value\"", line)
		}
		got[f[0]] = f[1]
	}
	if got["victimd.feat_count"] != "1" || got["victimd.feat_drops"] != "1" || got["victimd.feat_tail_over"] != "1" {
		t.Errorf("feature counters = %v", got)
	}
	if got["victimd.feat_drop_rate"] != "0.5000" || got["victimd.feat_mean_rt_us"] != "150000" {
		t.Errorf("feature rates = %v", got)
	}
	for _, key := range []string{"victimd.feat_window_ms", "victimd.feat_window_start_ms", "victimd.feat_attempts", "victimd.feat_queue_share", "victimd.feat_service_share"} {
		if _, ok := got[key]; !ok {
			t.Errorf("counters missing %s", key)
		}
	}
}

// testTracker builds the feature tracker a StartTier-constructed tier
// would carry, for tests that assemble a Tier literal directly.
func testTracker(t testing.TB) *live.WindowTracker {
	t.Helper()
	tracker, err := live.NewWindowTracker(featureWindow, featureTailOver)
	if err != nil {
		t.Fatal(err)
	}
	return tracker
}

// TestHandleZeroAllocOverhead pins the overhead contract on the request
// hot path: the handler allocates nothing per request with tracing
// disabled, and tracing an in-capacity request adds no allocations
// either (the collector's claim-once log is pre-sized).
func TestHandleZeroAllocOverhead(t *testing.T) {
	run := func(name string, tier *Tier, req *http.Request) {
		rec := httptest.NewRecorder()
		if allocs := testing.AllocsPerRun(5000, func() {
			rec.Body.Reset()
			tier.handle(rec, req)
		}); allocs != 0 {
			t.Errorf("%s: handle allocates %v objects/request, want 0", name, allocs)
		}
	}
	plain := &Tier{cfg: TierConfig{Name: "plain", Workers: 2}, okBody: []byte("plain ok\n"), slots: make(chan struct{}, 2), features: testTracker(t)}
	plain.slowdown.Store(1000)
	run("disabled", plain, httptest.NewRequest(http.MethodGet, "/", nil))

	col, err := live.New(live.Config{Tiers: []string{"traced"}, Events: 1 << 15})
	if err != nil {
		t.Fatalf("live.New: %v", err)
	}
	traced := &Tier{cfg: TierConfig{Name: "traced", Workers: 2, Trace: col}, okBody: []byte("traced ok\n"), slots: make(chan struct{}, 2), features: testTracker(t)}
	traced.slowdown.Store(1000)
	req := httptest.NewRequest(http.MethodGet, "/", nil)
	req.Header.Set(live.TraceHeader, live.FormatTraceHeader(col.NextTraceID(), 0))
	run("enabled", traced, req)
}

func BenchmarkHandleTraced(b *testing.B) {
	col, err := live.New(live.Config{Tiers: []string{"bench"}, Events: 1 << 22})
	if err != nil {
		b.Fatal(err)
	}
	tier := &Tier{cfg: TierConfig{Name: "bench", Workers: 4, Trace: col}, okBody: []byte("bench ok\n"), slots: make(chan struct{}, 4), features: testTracker(b)}
	tier.slowdown.Store(1000)
	req := httptest.NewRequest(http.MethodGet, "/", nil)
	req.Header.Set(live.TraceHeader, live.FormatTraceHeader(col.NextTraceID(), 0))
	rec := httptest.NewRecorder()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Body.Reset()
		tier.handle(rec, req)
	}
}
