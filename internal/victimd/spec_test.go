package victimd

import (
	"context"
	"testing"
	"time"

	"memca/internal/spec"
)

func TestSystemFromSpecRUBBoS(t *testing.T) {
	sys := spec.RUBBoSSystem()
	cfg, err := SystemFromSpec(sys)
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		name    string
		workers int
		service time.Duration
		gotW    int
		gotS    time.Duration
	}{
		{"web", sys.Tiers[0].PooledThreads(), sys.Tiers[0].Service, cfg.WebWorkers, cfg.WebService},
		{"app", sys.Tiers[1].PooledThreads(), sys.Tiers[1].Service, cfg.AppWorkers, cfg.AppService},
		{"db", sys.Tiers[2].PooledThreads(), sys.Tiers[2].Service, cfg.DBWorkers, cfg.DBService},
	}
	for _, w := range want {
		if w.gotW != w.workers {
			t.Errorf("%s workers = %d, want pooled %d", w.name, w.gotW, w.workers)
		}
		if w.gotS != w.service {
			t.Errorf("%s service = %v, want %v", w.name, w.gotS, w.service)
		}
	}
}

// TestSystemFromSpecStarts stands a spec-derived sizing up as a real
// chain and serves one request through it — the planner-to-live bridge
// end to end.
func TestSystemFromSpecStarts(t *testing.T) {
	sys := spec.System{Tiers: []spec.TierSpec{
		{Name: "web", Threads: 8, Servers: 2, Service: 100 * time.Microsecond},
		{Name: "app", Threads: 4, Servers: 2, Service: 200 * time.Microsecond},
		{Name: "db", Threads: 2, Servers: 1, Service: 500 * time.Microsecond},
	}}
	cfg, err := SystemFromSpec(sys)
	if err != nil {
		t.Fatal(err)
	}
	live, err := StartSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := live.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, status, err := live.Probe(ctx); err != nil {
		t.Fatalf("probe: %v", err)
	} else if status != 200 {
		t.Fatalf("probe status = %d, want 200", status)
	}
}

func TestSystemFromSpecRejects(t *testing.T) {
	two := spec.System{Tiers: []spec.TierSpec{
		{Name: "web", Threads: 8, Servers: 2, Service: 100 * time.Microsecond},
		{Name: "db", Threads: 2, Servers: 1, Service: 500 * time.Microsecond},
	}}
	if _, err := SystemFromSpec(two); err == nil {
		t.Error("2-tier spec: want error, got nil")
	}

	inverted := spec.System{Tiers: []spec.TierSpec{
		{Name: "web", Threads: 2, Servers: 2, Service: 100 * time.Microsecond},
		{Name: "app", Threads: 4, Servers: 2, Service: 200 * time.Microsecond},
		{Name: "db", Threads: 8, Servers: 1, Service: 500 * time.Microsecond},
	}}
	if _, err := SystemFromSpec(inverted); err == nil {
		t.Error("inverted pools: want condition-1 error, got nil")
	}

	if _, err := SystemFromSpec(spec.System{}); err == nil {
		t.Error("empty spec: want error, got nil")
	}
}
