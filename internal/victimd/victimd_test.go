package victimd

import (
	"context"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func startTestSystem(t *testing.T) *System {
	t.Helper()
	cfg := DefaultSystem()
	// Keep service times tiny so tests are fast.
	cfg.WebService = 0
	cfg.AppService = 0
	cfg.DBService = time.Millisecond
	s, err := StartSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := s.Close(); err != nil {
			t.Logf("closing system: %v", err)
		}
	})
	return s
}

func TestTierConfigValidation(t *testing.T) {
	if _, err := StartTier("127.0.0.1:0", TierConfig{Name: "", Workers: 1}); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := StartTier("127.0.0.1:0", TierConfig{Name: "x", Workers: 0}); err == nil {
		t.Error("zero workers accepted")
	}
	if _, err := StartTier("127.0.0.1:0", TierConfig{Name: "x", Workers: 1, Service: -time.Second}); err == nil {
		t.Error("negative service accepted")
	}
	if _, err := StartSystem(SystemConfig{WebWorkers: 2, AppWorkers: 4, DBWorkers: 8}); err == nil {
		t.Error("ascending pools accepted")
	}
}

func TestEndToEndRequestFlows(t *testing.T) {
	s := startTestSystem(t)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	rt, status, err := s.Probe(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if rt < time.Millisecond {
		t.Errorf("RT %v below the db service time", rt)
	}
	if s.Web.Served() != 1 || s.App.Served() != 1 || s.DB.Served() != 1 {
		t.Errorf("served counts: web %d app %d db %d", s.Web.Served(), s.App.Served(), s.DB.Served())
	}
}

func TestCapacityControlSlowsDB(t *testing.T) {
	s := startTestSystem(t)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	fast, _, err := s.Probe(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Degrade the db tier to 5% via the HTTP control endpoint, exactly
	// as an attack driver would.
	resp, err := http.Get(s.DB.URL() + "/control/capacity?multiplier=0.05")
	if err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("control endpoint status %d", resp.StatusCode)
	}
	slow, _, err := s.Probe(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// The db service stretches 1ms -> 20ms; allow generous slack for
	// HTTP overhead in the fast path.
	if slow-fast < 10*time.Millisecond {
		t.Errorf("degradation had little effect: %v -> %v", fast, slow)
	}
	// Restore.
	if err := s.DB.SetCapacityMultiplier(1); err != nil {
		t.Fatal(err)
	}
	restored, _, err := s.Probe(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if restored > 5*fast {
		t.Errorf("capacity did not recover: %v vs %v", restored, fast)
	}
}

func TestCapacityControlRejectsBadInput(t *testing.T) {
	s := startTestSystem(t)
	for _, q := range []string{"", "multiplier=abc", "multiplier=0", "multiplier=2"} {
		resp, err := http.Get(s.DB.URL() + "/control/capacity?" + q)
		if err != nil {
			t.Fatal(err)
		}
		if err := resp.Body.Close(); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("query %q: status %d, want 400", q, resp.StatusCode)
		}
	}
}

func TestBackPressurePropagatesToWebTier(t *testing.T) {
	// Stall the db tier hard and flood the web tier: once every db and
	// app worker blocks, the web tier's pool exhausts and sheds load —
	// the cross-tier overflow of the paper, on real sockets.
	s := startTestSystem(t)
	if err := s.DB.SetCapacityMultiplier(0.001); err != nil { // 1ms -> 1s per request
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	var rejections atomic.Int64
	client := &http.Client{Timeout: 5 * time.Second}
	for i := 0; i < 120; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := client.Get(s.Web.URL() + "/")
			if err != nil {
				return
			}
			if resp.StatusCode != http.StatusOK {
				rejections.Add(1)
			}
			_ = resp.Body.Close()
		}()
	}
	wg.Wait()
	if rejections.Load() == 0 {
		t.Error("no load shedding at the web tier under a stalled db")
	}
	if s.Web.Rejected() == 0 && rejections.Load() == 0 {
		t.Error("rejection accounting missing")
	}
}

func TestStatsEndpoint(t *testing.T) {
	s := startTestSystem(t)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, _, err := s.Probe(ctx); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(s.DB.URL() + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 256)
	n, _ := resp.Body.Read(buf)
	body := string(buf[:n])
	for _, want := range []string{`"name":"db"`, `"served":1`} {
		if !contains(body, want) {
			t.Errorf("stats %q missing %q", body, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
