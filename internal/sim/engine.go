// Package sim provides a deterministic discrete-event simulation engine:
// a virtual clock, an event heap, cancellable timers, and the probability
// distributions used by the MemCA queueing and contention models.
//
// All randomness flows through an injected *rand.Rand so that every
// experiment is reproducible from a seed, and the engine never consults
// wall-clock time.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Event is a scheduled callback. The zero value is not useful; events are
// created by Engine.Schedule and friends. An Event handle may be used to
// cancel the callback before it fires.
type Event struct {
	at       time.Duration
	seq      uint64
	fn       func()
	canceled bool
	index    int // heap index, -1 once popped
}

// Time reports the virtual time at which the event fires (or would have
// fired, if canceled).
func (ev *Event) Time() time.Duration { return ev.at }

// Cancel prevents the event's callback from running. Canceling an event
// that already fired or was already canceled is a no-op.
func (ev *Event) Cancel() { ev.canceled = true }

// Canceled reports whether Cancel was called on the event.
func (ev *Event) Canceled() bool { return ev.canceled }

// eventHeap is a min-heap ordered by (at, seq) so that simultaneous events
// fire in scheduling order (deterministic FIFO tie-break).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; a simulation runs on one goroutine and models concurrency
// through events, which is both faster and fully deterministic.
type Engine struct {
	now  time.Duration
	heap eventHeap
	seq  uint64
	rng  *rand.Rand

	// processed counts events fired since construction; useful for
	// progress accounting and loop-guard tests.
	processed uint64
}

// NewEngine returns an engine whose random source is seeded with seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// NewEngineWithRand returns an engine using the provided random source.
// The engine takes ownership of rng; callers must not share it.
func NewEngineWithRand(rng *rand.Rand) *Engine {
	return &Engine{rng: rng}
}

// Now returns the current virtual time (time since simulation start).
func (e *Engine) Now() time.Duration { return e.now }

// Rand returns the engine's random source. Model components should draw all
// randomness from it to preserve reproducibility.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Pending returns the number of events still queued (including canceled
// events not yet discarded).
func (e *Engine) Pending() int { return len(e.heap) }

// Processed returns the number of events fired so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Schedule queues fn to run after delay. A negative delay is treated as
// zero (fire at the current time, after already-queued events at that time).
func (e *Engine) Schedule(delay time.Duration, fn func()) *Event {
	if delay < 0 {
		delay = 0
	}
	return e.At(e.now+delay, fn)
}

// At queues fn to run at absolute virtual time t. Scheduling in the past is
// clamped to the present.
func (e *Engine) At(t time.Duration, fn func()) *Event {
	if fn == nil {
		panic("sim: At called with nil callback")
	}
	if t < e.now {
		t = e.now
	}
	ev := &Event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.heap, ev)
	return ev
}

// Step fires the next event, advancing the clock to its timestamp. It
// returns false when no runnable event remains.
func (e *Engine) Step() bool {
	for len(e.heap) > 0 {
		ev := heap.Pop(&e.heap).(*Event)
		if ev.canceled {
			continue
		}
		e.now = ev.at
		e.processed++
		ev.fn()
		return true
	}
	return false
}

// Run fires events until the clock would pass until, then sets the clock to
// exactly until. Events scheduled at until are fired.
func (e *Engine) Run(until time.Duration) {
	for len(e.heap) > 0 && e.heap[0].at <= until {
		if !e.Step() {
			break
		}
	}
	if e.now < until {
		e.now = until
	}
}

// RunAll fires every queued event. It guards against runaway simulations
// with maxEvents; a zero maxEvents means no limit.
func (e *Engine) RunAll(maxEvents uint64) error {
	fired := uint64(0)
	for e.Step() {
		fired++
		if maxEvents > 0 && fired > maxEvents {
			return fmt.Errorf("sim: exceeded %d events at t=%v", maxEvents, e.now)
		}
	}
	return nil
}
