// Package sim provides a deterministic discrete-event simulation engine:
// a virtual clock, an event heap, cancellable timers, and the probability
// distributions used by the MemCA queueing and contention models.
//
// All randomness flows through an injected *rand.Rand so that every
// experiment is reproducible from a seed, and the engine never consults
// wall-clock time.
//
// The engine's hot path is allocation-free in steady state: events live by
// value in an index-addressed 4-ary min-heap, cancellation handles are
// value types addressing a generation-checked slot table, and freed slots
// are recycled through a free list. Model code that needs per-event
// context without allocating a closure uses the Actor scheduling path
// (ScheduleCall/AtCall).
package sim

import (
	"fmt"
	"math/rand"
	"time"
)

// Actor is the allocation-free callback path: instead of capturing state
// in a closure (one heap allocation per event), model code implements Act
// on a long-lived object and schedules it with ScheduleCall, passing the
// per-event context as arg. Pointer-shaped args (e.g. *Request) convert to
// `any` without allocating.
type Actor interface {
	// Act handles one fired event. arg is whatever was passed to
	// ScheduleCall/AtCall for this event.
	Act(arg any)
}

// Event is a cancellation handle for a scheduled callback, returned by
// Schedule and friends. It is a small value type: copy it freely. The zero
// Event is inert — Cancel and Canceled on it are no-ops — so a struct
// field holding "no event" needs no pointer or sentinel.
type Event struct {
	e   *Engine
	id  int32
	gen uint32
	at  time.Duration
}

// Time reports the virtual time at which the event fires (or would have
// fired, if canceled).
func (ev Event) Time() time.Duration { return ev.at }

// Cancel prevents the event's callback from running. Canceling an event
// that already fired or was already canceled is a no-op.
func (ev Event) Cancel() {
	if ev.e != nil {
		ev.e.cancel(ev.id, ev.gen)
	}
}

// Canceled reports whether Cancel was called on the event. The answer
// stays valid while the event is queued and through the pop that discards
// it; once the engine reuses the underlying slot for a later event the
// stale handle reports false.
func (ev Event) Canceled() bool {
	if ev.e == nil {
		return false
	}
	return ev.e.canceled(ev.id, ev.gen)
}

// event is one queued entry in the engine's heap, stored by value.
// Exactly one of fn and actor is set.
type event struct {
	at    time.Duration
	seq   uint64
	fn    func()
	actor Actor
	arg   any
	id    int32
}

// before is the heap order: (at, seq) ascending, so simultaneous events
// fire in scheduling order (deterministic FIFO tie-break). seq is unique,
// making the order total — heap arity therefore cannot change pop order.
func (a *event) before(b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// slot is the cancellation-table entry backing one event id. pos tracks
// the event's current heap index so Cancel is O(1); gen distinguishes
// reuses of the same id so stale handles are inert.
type slot struct {
	pos      int32 // heap index, -1 while free
	gen      uint32
	canceled bool
	// lastCanceled remembers whether the generation that most recently
	// left the heap had been canceled, so Canceled() keeps answering
	// correctly on a handle whose event was just discarded.
	lastCanceled bool
}

// Engine is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; a simulation runs on one goroutine and models concurrency
// through events, which is both faster and fully deterministic.
type Engine struct {
	now time.Duration
	seq uint64
	rng *rand.Rand

	// heap is an index-addressed 4-ary min-heap of event values. 4-ary
	// beats binary here: pops dominate (every push is eventually popped),
	// and the shallower tree trades a few extra comparisons per level for
	// half the levels and better cache locality on the value slice.
	heap  []event
	slots []slot
	free  []int32 // free slot ids, reused LIFO

	// processed counts events fired since construction; useful for
	// progress accounting and loop-guard tests.
	processed uint64
}

// NewEngine returns an engine whose random source is seeded with seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// NewEngineWithRand returns an engine using the provided random source.
// The engine takes ownership of rng; callers must not share it.
func NewEngineWithRand(rng *rand.Rand) *Engine {
	return &Engine{rng: rng}
}

// Now returns the current virtual time (time since simulation start).
func (e *Engine) Now() time.Duration { return e.now }

// Rand returns the engine's random source. Model components should draw all
// randomness from it to preserve reproducibility.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Pending returns the number of events still queued (including canceled
// events not yet discarded).
func (e *Engine) Pending() int { return len(e.heap) }

// Processed returns the number of events fired so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Schedule queues fn to run after delay. A negative delay is treated as
// zero (fire at the current time, after already-queued events at that time).
func (e *Engine) Schedule(delay time.Duration, fn func()) Event {
	if fn == nil {
		panic("sim: Schedule called with nil callback")
	}
	if delay < 0 {
		delay = 0
	}
	return e.push(e.now+delay, fn, nil, nil)
}

// At queues fn to run at absolute virtual time t. Scheduling in the past is
// clamped to the present.
func (e *Engine) At(t time.Duration, fn func()) Event {
	if fn == nil {
		panic("sim: At called with nil callback")
	}
	return e.push(t, fn, nil, nil)
}

// ScheduleCall queues actor.Act(arg) to run after delay. Unlike Schedule
// it performs no heap allocation: the actor is a long-lived object and arg
// carries the per-event context (keep it pointer-shaped or a small integer
// to stay allocation-free across the `any` conversion).
//
//memca:hotpath
func (e *Engine) ScheduleCall(delay time.Duration, actor Actor, arg any) Event {
	if actor == nil {
		panic("sim: ScheduleCall called with nil actor")
	}
	if delay < 0 {
		delay = 0
	}
	return e.push(e.now+delay, nil, actor, arg)
}

// AtCall queues actor.Act(arg) at absolute virtual time t, clamped to the
// present. It is the Actor counterpart of At.
//
//memca:hotpath
func (e *Engine) AtCall(t time.Duration, actor Actor, arg any) Event {
	if actor == nil {
		panic("sim: AtCall called with nil actor")
	}
	return e.push(t, nil, actor, arg)
}

// push allocates a slot, appends the event, and restores the heap order.
func (e *Engine) push(t time.Duration, fn func(), actor Actor, arg any) Event {
	if t < e.now {
		t = e.now
	}
	var id int32
	if n := len(e.free); n > 0 {
		id = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		e.slots = append(e.slots, slot{})
		id = int32(len(e.slots) - 1)
	}
	s := &e.slots[id]
	s.canceled = false
	ev := event{at: t, seq: e.seq, fn: fn, actor: actor, arg: arg, id: id}
	e.seq++
	e.heap = append(e.heap, ev)
	e.siftUp(len(e.heap) - 1)
	return Event{e: e, id: id, gen: s.gen, at: t}
}

// siftUp moves heap[i] toward the root until the order is restored.
func (e *Engine) siftUp(i int) {
	ev := e.heap[i]
	for i > 0 {
		parent := (i - 1) / 4
		if !ev.before(&e.heap[parent]) {
			break
		}
		e.heap[i] = e.heap[parent]
		e.slots[e.heap[i].id].pos = int32(i)
		i = parent
	}
	e.heap[i] = ev
	e.slots[ev.id].pos = int32(i)
}

// siftDown moves heap[i] toward the leaves until the order is restored.
func (e *Engine) siftDown(i int) {
	ev := e.heap[i]
	n := len(e.heap)
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if e.heap[c].before(&e.heap[best]) {
				best = c
			}
		}
		if !e.heap[best].before(&ev) {
			break
		}
		e.heap[i] = e.heap[best]
		e.slots[e.heap[i].id].pos = int32(i)
		i = best
	}
	e.heap[i] = ev
	e.slots[ev.id].pos = int32(i)
}

// popTop removes heap[0], returning its value and releasing its slot. The
// vacated tail entry is zeroed so the heap does not retain callbacks or
// args beyond the event's lifetime.
func (e *Engine) popTop() event {
	top := e.heap[0]
	n := len(e.heap) - 1
	if n > 0 {
		e.heap[0] = e.heap[n]
	}
	e.heap[n] = event{}
	e.heap = e.heap[:n]
	if n > 0 {
		e.siftDown(0)
	}
	s := &e.slots[top.id]
	s.lastCanceled = s.canceled
	s.canceled = false
	s.gen++
	s.pos = -1
	e.free = append(e.free, top.id)
	return top
}

// cancel marks the event live under (id, gen) as canceled. The entry stays
// in the heap and is discarded when popped (lazy cancellation keeps the
// Pending semantics of the original engine).
func (e *Engine) cancel(id int32, gen uint32) {
	if int(id) >= len(e.slots) {
		return
	}
	s := &e.slots[id]
	if s.gen != gen || s.pos < 0 {
		return
	}
	s.canceled = true
}

// canceled reports the cancellation state for handle (id, gen).
func (e *Engine) canceled(id int32, gen uint32) bool {
	if int(id) >= len(e.slots) {
		return false
	}
	s := &e.slots[id]
	switch {
	case s.gen == gen:
		return s.canceled
	case s.gen == gen+1:
		return s.lastCanceled
	default:
		return false
	}
}

// Step fires the next event, advancing the clock to its timestamp. It
// returns false when no runnable event remains.
//
//memca:hotpath
func (e *Engine) Step() bool {
	for len(e.heap) > 0 {
		canceled := e.slots[e.heap[0].id].canceled
		ev := e.popTop()
		if canceled {
			continue
		}
		e.now = ev.at
		e.processed++
		if ev.fn != nil {
			ev.fn()
		} else {
			ev.actor.Act(ev.arg)
		}
		return true
	}
	return false
}

// Run fires events until the clock would pass until, then sets the clock to
// exactly until. Events scheduled at until are fired.
func (e *Engine) Run(until time.Duration) {
	for len(e.heap) > 0 && e.heap[0].at <= until {
		if !e.Step() {
			break
		}
	}
	if e.now < until {
		e.now = until
	}
}

// RunChecked is Run with a periodic interruption hook: after every
// checkEvery fired events it calls check and stops early — without
// advancing the clock to until — when check returns a non-nil error,
// returning that error. The hook must not touch the simulation (it runs
// between events), so the event sequence up to an interruption is exactly
// the sequence Run would have produced; a nil check or zero checkEvery
// degrades to plain Run.
func (e *Engine) RunChecked(until time.Duration, checkEvery uint64, check func() error) error {
	if check == nil || checkEvery == 0 {
		e.Run(until)
		return nil
	}
	var fired uint64
	for len(e.heap) > 0 && e.heap[0].at <= until {
		if !e.Step() {
			break
		}
		fired++
		if fired%checkEvery == 0 {
			if err := check(); err != nil {
				return err
			}
		}
	}
	if e.now < until {
		e.now = until
	}
	return nil
}

// RunAll fires every queued event. It guards against runaway simulations
// with maxEvents; a zero maxEvents means no limit.
func (e *Engine) RunAll(maxEvents uint64) error {
	return e.RunAllChecked(maxEvents, 0, nil)
}

// RunAllChecked is RunAll with the same periodic interruption hook as
// RunChecked.
func (e *Engine) RunAllChecked(maxEvents, checkEvery uint64, check func() error) error {
	fired := uint64(0)
	for e.Step() {
		fired++
		if maxEvents > 0 && fired > maxEvents {
			return fmt.Errorf("sim: exceeded %d events at t=%v", maxEvents, e.now)
		}
		if check != nil && checkEvery > 0 && fired%checkEvery == 0 {
			if err := check(); err != nil {
				return err
			}
		}
	}
	return nil
}
