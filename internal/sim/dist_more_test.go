package sim

import (
	"math/rand"
	"testing"
	"time"
)

func TestDistributionMeans(t *testing.T) {
	emp, err := NewEmpirical([]time.Duration{time.Millisecond, 3 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name string
		d    Dist
		want time.Duration
		tol  time.Duration
	}{
		{"deterministic", NewDeterministic(5 * time.Millisecond), 5 * time.Millisecond, 0},
		{"exponential", NewExponential(20 * time.Millisecond), 20 * time.Millisecond, 0},
		{"uniform", NewUniform(10*time.Millisecond, 30*time.Millisecond), 20 * time.Millisecond, 0},
		{"empirical", emp, 2 * time.Millisecond, 0},
		{"erlang", NewErlang(4, 8*time.Millisecond), 8 * time.Millisecond, time.Microsecond},
		{"pareto", NewPareto(time.Millisecond, 2), 2 * time.Millisecond, time.Microsecond},
	}
	for _, tc := range tests {
		got := tc.d.Mean()
		if got < tc.want-tc.tol || got > tc.want+tc.tol {
			t.Errorf("%s Mean = %v, want %v", tc.name, got, tc.want)
		}
	}
	// Infinite-mean Pareto saturates.
	if got := NewPareto(time.Millisecond, 0.9).Mean(); got != 1<<63-1 {
		t.Errorf("heavy Pareto mean = %v, want max duration", got)
	}
}

func TestDistributionConstructorPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"exponential zero", func() { NewExponential(0) }},
		{"rate zero", func() { NewExponentialRate(0) }},
		{"uniform inverted", func() { NewUniform(time.Second, 0) }},
		{"lognormal zero mean", func() { NewLogNormalFromMean(0, 1) }},
		{"lognormal negative sigma", func() { NewLogNormalFromMean(time.Second, -1) }},
		{"pareto zero scale", func() { NewPareto(0, 2) }},
		{"pareto zero shape", func() { NewPareto(time.Second, 0) }},
		{"erlang zero shape", func() { NewErlang(0, time.Second) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("no panic on invalid constructor argument")
				}
			}()
			tc.fn()
		})
	}
}

func TestUniformDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewUniform(time.Second, time.Second)
	if got := d.Sample(rng); got != time.Second {
		t.Errorf("point-mass uniform sampled %v", got)
	}
}

func TestDeterministicNegativeClamped(t *testing.T) {
	d := Deterministic{Value: -time.Second}
	if got := d.Sample(nil); got != 0 {
		t.Errorf("negative deterministic sampled %v, want 0", got)
	}
}

func TestEngineAccessors(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	e := NewEngineWithRand(rng)
	if e.Rand() != rng {
		t.Error("Rand() did not return the injected source")
	}
	ev := e.Schedule(time.Second, func() {})
	if ev.Time() != time.Second {
		t.Errorf("Event.Time = %v", ev.Time())
	}
	if e.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", e.Pending())
	}
	if e.Processed() != 0 {
		t.Errorf("Processed = %d, want 0", e.Processed())
	}
	if err := e.RunAll(0); err != nil {
		t.Fatal(err)
	}
	if e.Pending() != 0 || e.Processed() != 1 {
		t.Errorf("after run: pending %d processed %d", e.Pending(), e.Processed())
	}
}

func TestEngineAtPanicsOnNil(t *testing.T) {
	e := NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Error("nil callback accepted")
		}
	}()
	e.At(time.Second, nil)
}
