package sim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"
)

// Dist is a distribution over non-negative durations. Implementations must
// be safe to share across samples but draw randomness only from the rng
// passed to Sample, keeping simulations reproducible.
type Dist interface {
	// Sample draws one value. Implementations never return a negative
	// duration.
	Sample(rng *rand.Rand) time.Duration
	// Mean returns the distribution mean.
	Mean() time.Duration
}

// secondsToDuration converts a float in seconds to a Duration, clamping
// negatives to zero and guarding against overflow.
func secondsToDuration(s float64) time.Duration {
	if s <= 0 || math.IsNaN(s) {
		return 0
	}
	if s > math.MaxInt64/float64(time.Second) {
		return math.MaxInt64
	}
	return time.Duration(s * float64(time.Second))
}

// Deterministic is a distribution that always returns the same value.
type Deterministic struct {
	Value time.Duration
}

// NewDeterministic returns a distribution that always yields v.
func NewDeterministic(v time.Duration) Deterministic { return Deterministic{Value: v} }

// Sample implements Dist.
func (d Deterministic) Sample(*rand.Rand) time.Duration {
	if d.Value < 0 {
		return 0
	}
	return d.Value
}

// Mean implements Dist.
func (d Deterministic) Mean() time.Duration { return d.Value }

// Exponential is an exponential distribution, the paper's model for both
// inter-arrival gaps (Poisson arrivals) and per-tier service times.
type Exponential struct {
	mean float64 // seconds
}

// NewExponential returns an exponential distribution with the given mean.
// It panics when mean is not positive, which is always a programming error.
func NewExponential(mean time.Duration) Exponential {
	if mean <= 0 {
		panic(fmt.Sprintf("sim: exponential mean must be positive, got %v", mean))
	}
	return Exponential{mean: mean.Seconds()}
}

// NewExponentialRate returns an exponential distribution with the given
// event rate in events per second.
func NewExponentialRate(ratePerSec float64) Exponential {
	if ratePerSec <= 0 || math.IsNaN(ratePerSec) {
		panic(fmt.Sprintf("sim: exponential rate must be positive, got %v", ratePerSec))
	}
	return Exponential{mean: 1 / ratePerSec}
}

// Sample implements Dist.
func (d Exponential) Sample(rng *rand.Rand) time.Duration {
	return secondsToDuration(rng.ExpFloat64() * d.mean)
}

// Mean implements Dist.
func (d Exponential) Mean() time.Duration { return secondsToDuration(d.mean) }

// Uniform is a uniform distribution over [Lo, Hi].
type Uniform struct {
	Lo, Hi time.Duration
}

// NewUniform returns a uniform distribution over [lo, hi]. It panics when
// hi < lo.
func NewUniform(lo, hi time.Duration) Uniform {
	if hi < lo {
		panic(fmt.Sprintf("sim: uniform bounds inverted: [%v, %v]", lo, hi))
	}
	return Uniform{Lo: lo, Hi: hi}
}

// Sample implements Dist.
func (d Uniform) Sample(rng *rand.Rand) time.Duration {
	span := d.Hi - d.Lo
	if span <= 0 {
		return d.Lo
	}
	v := d.Lo + time.Duration(rng.Int63n(int64(span)+1))
	if v < 0 {
		return 0
	}
	return v
}

// Mean implements Dist.
func (d Uniform) Mean() time.Duration { return d.Lo + (d.Hi-d.Lo)/2 }

// LogNormal is a log-normal distribution parameterized by the mean and
// sigma of the underlying normal, useful for heavy-ish service times.
type LogNormal struct {
	Mu    float64 // mean of log(X), X in seconds
	Sigma float64 // stddev of log(X)
}

// NewLogNormalFromMean returns a log-normal whose arithmetic mean is mean
// and whose log-space standard deviation is sigma.
func NewLogNormalFromMean(mean time.Duration, sigma float64) LogNormal {
	if mean <= 0 {
		panic(fmt.Sprintf("sim: log-normal mean must be positive, got %v", mean))
	}
	if sigma < 0 {
		panic(fmt.Sprintf("sim: log-normal sigma must be non-negative, got %v", sigma))
	}
	mu := math.Log(mean.Seconds()) - sigma*sigma/2
	return LogNormal{Mu: mu, Sigma: sigma}
}

// Sample implements Dist.
func (d LogNormal) Sample(rng *rand.Rand) time.Duration {
	return secondsToDuration(math.Exp(d.Mu + d.Sigma*rng.NormFloat64()))
}

// Mean implements Dist.
func (d LogNormal) Mean() time.Duration {
	return secondsToDuration(math.Exp(d.Mu + d.Sigma*d.Sigma/2))
}

// Pareto is a bounded-minimum Pareto (power-law) distribution, used for
// heavy-tailed sensitivity studies around the paper's exponential baseline.
type Pareto struct {
	Xm    time.Duration // scale (minimum value)
	Alpha float64       // shape; > 1 for a finite mean
}

// NewPareto returns a Pareto distribution with minimum xm and shape alpha.
func NewPareto(xm time.Duration, alpha float64) Pareto {
	if xm <= 0 {
		panic(fmt.Sprintf("sim: pareto scale must be positive, got %v", xm))
	}
	if alpha <= 0 {
		panic(fmt.Sprintf("sim: pareto shape must be positive, got %v", alpha))
	}
	return Pareto{Xm: xm, Alpha: alpha}
}

// Sample implements Dist.
func (d Pareto) Sample(rng *rand.Rand) time.Duration {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return secondsToDuration(d.Xm.Seconds() / math.Pow(u, 1/d.Alpha))
}

// Mean implements Dist. For alpha <= 1 the mean is infinite; Mean returns
// the maximum representable duration in that case.
func (d Pareto) Mean() time.Duration {
	if d.Alpha <= 1 {
		return math.MaxInt64
	}
	return secondsToDuration(d.Alpha * d.Xm.Seconds() / (d.Alpha - 1))
}

// Empirical samples uniformly from a fixed set of observed values, e.g.
// service times measured from a trace.
type Empirical struct {
	values []time.Duration
	mean   time.Duration
}

// NewEmpirical returns a distribution drawing uniformly from values. It
// copies the slice and returns an error when values is empty or contains a
// negative duration.
func NewEmpirical(values []time.Duration) (Empirical, error) {
	if len(values) == 0 {
		return Empirical{}, fmt.Errorf("sim: empirical distribution needs at least one value")
	}
	cp := make([]time.Duration, len(values))
	var sum time.Duration
	for i, v := range values {
		if v < 0 {
			return Empirical{}, fmt.Errorf("sim: empirical value %d is negative: %v", i, v)
		}
		cp[i] = v
		sum += v
	}
	return Empirical{values: cp, mean: sum / time.Duration(len(cp))}, nil
}

// Sample implements Dist.
func (d Empirical) Sample(rng *rand.Rand) time.Duration {
	return d.values[rng.Intn(len(d.values))]
}

// Mean implements Dist.
func (d Empirical) Mean() time.Duration { return d.mean }

// Erlang is the sum of K independent exponentials, giving a tunable
// coefficient of variation below 1 (CV = 1/sqrt(K)).
type Erlang struct {
	K    int
	each Exponential
}

// NewErlang returns an Erlang-k distribution with the given overall mean.
func NewErlang(k int, mean time.Duration) Erlang {
	if k <= 0 {
		panic(fmt.Sprintf("sim: erlang shape must be positive, got %d", k))
	}
	return Erlang{K: k, each: NewExponential(mean / time.Duration(k))}
}

// Sample implements Dist.
func (d Erlang) Sample(rng *rand.Rand) time.Duration {
	var sum time.Duration
	for i := 0; i < d.K; i++ {
		sum += d.each.Sample(rng)
	}
	return sum
}

// Mean implements Dist.
func (d Erlang) Mean() time.Duration { return time.Duration(d.K) * d.each.Mean() }

// Quantile computes the q-quantile (0 <= q <= 1) of an empirical sample by
// linear interpolation. It is a convenience for tests; the stats package
// holds the full toolkit.
func Quantile(values []time.Duration, q float64) time.Duration {
	if len(values) == 0 {
		return 0
	}
	cp := make([]time.Duration, len(values))
	copy(cp, values)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	if q <= 0 {
		return cp[0]
	}
	if q >= 1 {
		return cp[len(cp)-1]
	}
	pos := q * float64(len(cp)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return cp[lo]
	}
	frac := pos - float64(lo)
	return cp[lo] + time.Duration(frac*float64(cp[hi]-cp[lo]))
}
