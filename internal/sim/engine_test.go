package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestEngineFiresInTimeOrder(t *testing.T) {
	e := NewEngine(1)
	var got []time.Duration
	for _, d := range []time.Duration{5 * time.Second, time.Second, 3 * time.Second} {
		d := d
		e.Schedule(d, func() { got = append(got, e.Now()) })
	}
	if err := e.RunAll(0); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	want := []time.Duration{time.Second, 3 * time.Second, 5 * time.Second}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d fired at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestEngineSimultaneousEventsFIFO(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Second, func() { order = append(order, i) })
	}
	if err := e.RunAll(0); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events fired out of scheduling order: %v", order)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.Schedule(time.Second, func() { fired = true })
	ev.Cancel()
	if err := e.RunAll(0); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if fired {
		t.Error("canceled event fired")
	}
	if !ev.Canceled() {
		t.Error("Canceled() = false after Cancel")
	}
}

func TestEngineRunStopsAtDeadline(t *testing.T) {
	e := NewEngine(1)
	var fired []time.Duration
	for i := 1; i <= 5; i++ {
		d := time.Duration(i) * time.Second
		e.Schedule(d, func() { fired = append(fired, e.Now()) })
	}
	e.Run(3 * time.Second)
	if len(fired) != 3 {
		t.Fatalf("fired %d events by t=3s, want 3", len(fired))
	}
	if e.Now() != 3*time.Second {
		t.Errorf("Now() = %v after Run(3s), want 3s", e.Now())
	}
	e.Run(10 * time.Second)
	if len(fired) != 5 {
		t.Fatalf("fired %d events total, want 5", len(fired))
	}
}

func TestEngineScheduleWithinCallback(t *testing.T) {
	e := NewEngine(1)
	var times []time.Duration
	e.Schedule(time.Second, func() {
		times = append(times, e.Now())
		e.Schedule(time.Second, func() { times = append(times, e.Now()) })
	})
	if err := e.RunAll(0); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if len(times) != 2 || times[0] != time.Second || times[1] != 2*time.Second {
		t.Errorf("chained scheduling produced %v", times)
	}
}

func TestEngineNegativeDelayClampsToNow(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(2*time.Second, func() {
		e.Schedule(-5*time.Second, func() {
			if e.Now() != 2*time.Second {
				t.Errorf("negative-delay event fired at %v, want 2s", e.Now())
			}
		})
	})
	if err := e.RunAll(0); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
}

func TestEngineRunAllGuard(t *testing.T) {
	e := NewEngine(1)
	var tick func()
	tick = func() { e.Schedule(time.Millisecond, tick) }
	e.Schedule(0, tick)
	if err := e.RunAll(1000); err == nil {
		t.Fatal("RunAll did not report runaway simulation")
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func(seed int64) []time.Duration {
		e := NewEngine(seed)
		d := NewExponential(100 * time.Millisecond)
		var out []time.Duration
		var next func()
		next = func() {
			out = append(out, e.Now())
			if len(out) < 50 {
				e.Schedule(d.Sample(e.Rand()), next)
			}
		}
		e.Schedule(0, next)
		if err := e.RunAll(0); err != nil {
			t.Fatalf("RunAll: %v", err)
		}
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at event %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if i >= len(c) || a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestEngineClockNeverRegresses(t *testing.T) {
	e := NewEngine(7)
	prev := time.Duration(0)
	d := NewExponential(10 * time.Millisecond)
	for i := 0; i < 200; i++ {
		e.Schedule(d.Sample(e.Rand()), func() {
			if e.Now() < prev {
				t.Fatalf("clock regressed from %v to %v", prev, e.Now())
			}
			prev = e.Now()
		})
	}
	if err := e.RunAll(0); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
}

func TestExponentialMeanConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	d := NewExponential(200 * time.Millisecond)
	var sum time.Duration
	const n = 200000
	for i := 0; i < n; i++ {
		sum += d.Sample(rng)
	}
	got := sum / n
	if got < 190*time.Millisecond || got > 210*time.Millisecond {
		t.Errorf("sample mean %v outside [190ms, 210ms]", got)
	}
}

func TestExponentialRateEquivalence(t *testing.T) {
	byMean := NewExponential(250 * time.Millisecond)
	byRate := NewExponentialRate(4)
	if byMean.Mean() != byRate.Mean() {
		t.Errorf("mean mismatch: %v vs %v", byMean.Mean(), byRate.Mean())
	}
}

func TestDistributionsNeverNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	emp, err := NewEmpirical([]time.Duration{time.Millisecond, 3 * time.Millisecond})
	if err != nil {
		t.Fatalf("NewEmpirical: %v", err)
	}
	dists := map[string]Dist{
		"exponential":   NewExponential(time.Millisecond),
		"uniform":       NewUniform(0, 10*time.Millisecond),
		"lognormal":     NewLogNormalFromMean(5*time.Millisecond, 1.5),
		"pareto":        NewPareto(time.Millisecond, 1.3),
		"empirical":     emp,
		"erlang":        NewErlang(4, 8*time.Millisecond),
		"deterministic": NewDeterministic(2 * time.Millisecond),
	}
	for name, d := range dists {
		for i := 0; i < 5000; i++ {
			if v := d.Sample(rng); v < 0 {
				t.Errorf("%s produced negative sample %v", name, v)
				break
			}
		}
	}
}

func TestLogNormalMean(t *testing.T) {
	d := NewLogNormalFromMean(100*time.Millisecond, 0.8)
	got := d.Mean()
	if got < 99*time.Millisecond || got > 101*time.Millisecond {
		t.Errorf("analytic mean %v, want ~100ms", got)
	}
	rng := rand.New(rand.NewSource(11))
	var sum time.Duration
	const n = 300000
	for i := 0; i < n; i++ {
		sum += d.Sample(rng)
	}
	avg := sum / n
	if avg < 95*time.Millisecond || avg > 105*time.Millisecond {
		t.Errorf("sample mean %v, want ~100ms", avg)
	}
}

func TestErlangVarianceBelowExponential(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	mean := 50 * time.Millisecond
	variance := func(d Dist) float64 {
		const n = 50000
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			v := d.Sample(rng).Seconds()
			sum += v
			sumSq += v * v
		}
		m := sum / n
		return sumSq/n - m*m
	}
	vExp := variance(NewExponential(mean))
	vErl := variance(NewErlang(8, mean))
	if vErl >= vExp {
		t.Errorf("Erlang-8 variance %v not below exponential %v", vErl, vExp)
	}
}

func TestEmpiricalRejectsBadInput(t *testing.T) {
	if _, err := NewEmpirical(nil); err == nil {
		t.Error("empty empirical accepted")
	}
	if _, err := NewEmpirical([]time.Duration{-time.Second}); err == nil {
		t.Error("negative empirical value accepted")
	}
}

func TestQuantile(t *testing.T) {
	vals := []time.Duration{4, 1, 3, 2, 5} // unsorted on purpose
	tests := []struct {
		q    float64
		want time.Duration
	}{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.75, 4},
	}
	for _, tc := range tests {
		if got := Quantile(vals, tc.q); got != tc.want {
			t.Errorf("Quantile(%.2f) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Errorf("Quantile(nil) = %v, want 0", got)
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []uint32, q1, q2 float64) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]time.Duration, len(raw))
		for i, r := range raw {
			vals[i] = time.Duration(r)
		}
		norm := func(q float64) float64 {
			q = math.Abs(q)
			return q - math.Floor(q)
		}
		q1, q2 = norm(q1), norm(q2)
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		return Quantile(vals, q1) <= Quantile(vals, q2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
