package sim

import (
	"testing"
	"time"
)

// sumActor accumulates its int args, exercising the allocation-free
// Actor dispatch path.
type sumActor struct{ sum int }

func (a *sumActor) Act(arg any) { a.sum += arg.(int) }

// warmEngine grows the heap slice, slot table, and free list so the
// steady-state measurements below never hit a growth allocation.
func warmEngine(t *testing.T, e *Engine, events int) {
	t.Helper()
	fn := func() {}
	for i := 0; i < events; i++ {
		e.Schedule(time.Duration(i)*time.Microsecond, fn)
	}
	if err := e.RunAll(uint64(events) * 2); err != nil {
		t.Fatalf("warmup RunAll: %v", err)
	}
}

// TestSchedulePopZeroAllocs pins the engine's core contract: scheduling a
// prebuilt callback and firing it allocates nothing in steady state.
func TestSchedulePopZeroAllocs(t *testing.T) {
	e := NewEngine(1)
	warmEngine(t, e, 1024)
	fn := func() {}
	allocs := testing.AllocsPerRun(10000, func() {
		e.Schedule(time.Microsecond, fn)
		e.Step()
	})
	if allocs != 0 {
		t.Errorf("Schedule+Step allocates %v objects/op, want 0", allocs)
	}
}

// TestScheduleCallZeroAllocs pins the Actor path, including the int-arg
// conversion to `any` (allocation-free for values below 256).
func TestScheduleCallZeroAllocs(t *testing.T) {
	e := NewEngine(1)
	warmEngine(t, e, 1024)
	a := &sumActor{}
	allocs := testing.AllocsPerRun(10000, func() {
		e.ScheduleCall(time.Microsecond, a, 7)
		e.Step()
	})
	if allocs != 0 {
		t.Errorf("ScheduleCall+Step allocates %v objects/op, want 0", allocs)
	}
	if a.sum == 0 {
		t.Error("actor never fired")
	}
}

// TestCancelZeroAllocs pins lazy cancellation: canceling a queued event and
// discarding it at pop time allocates nothing.
func TestCancelZeroAllocs(t *testing.T) {
	e := NewEngine(1)
	warmEngine(t, e, 1024)
	fn := func() { t.Error("canceled event fired") }
	allocs := testing.AllocsPerRun(10000, func() {
		ev := e.Schedule(time.Microsecond, fn)
		ev.Cancel()
		e.Step()
	})
	if allocs != 0 {
		t.Errorf("Schedule+Cancel+Step allocates %v objects/op, want 0", allocs)
	}
}
