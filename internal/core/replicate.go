package core

import (
	"context"

	"memca/internal/stats"
	"memca/internal/sweep"
)

// Replication is one independent repetition of an experiment.
type Replication struct {
	// Index is the replication number, 0-based.
	Index int
	// Seed is the derived seed the run used (sweep.DeriveSeed of the
	// base configuration seed and Index).
	Seed int64
	// Report is the run's outcome.
	Report *Report
}

// ReplicateOptions control parallel replication.
type ReplicateOptions struct {
	// Workers bounds the worker count: 0 means one per available CPU,
	// 1 forces the serial path. Results are identical for every value.
	Workers int
	// Progress, when non-nil, is called after each completed run with
	// (completed, total) counts.
	Progress func(done, total int)
}

// Replicate runs the experiment described by cfg `runs` times with
// deterministically derived per-run seeds and returns the replications in
// index order. Replication i always uses sweep.DeriveSeed(cfg.Seed, i),
// so the result set is a pure function of (cfg, runs) — independent of
// worker count and stable across processes.
//
// Each worker carries one stats arena, reset between runs, so the stats
// recording of every replication after the first reuses warm slabs. A
// caller-supplied cfg.Arena is left alone (the caller then owns resets,
// and replications must run serially on it — pass Workers: 1).
func Replicate(ctx context.Context, cfg Config, runs int, opts ReplicateOptions) ([]Replication, error) {
	sweepOpts := sweep.Options{Workers: opts.Workers, Progress: opts.Progress}
	return sweep.RunState(ctx, sweepOpts, runs, stats.GetArena, stats.PutArena,
		func(jobCtx context.Context, arena *stats.Arena, i int) (Replication, error) {
			runCfg := cfg
			runCfg.Seed = sweep.DeriveSeed(cfg.Seed, i)
			if runCfg.Arena == nil {
				runCfg.Arena = arena
				// The Report holds only heap copies, so the worker's arena
				// can be recycled as soon as the run is distilled.
				defer arena.Reset()
			}
			x, err := NewExperiment(runCfg)
			if err != nil {
				return Replication{}, err
			}
			// RunContext honors the sweep's cancellation, so an aborted
			// replication set stops mid-simulation instead of finishing
			// every in-flight multi-minute run.
			rep, err := x.RunContext(jobCtx)
			if err != nil {
				return Replication{}, err
			}
			return Replication{Index: i, Seed: runCfg.Seed, Report: rep}, nil
		})
}
