// Package core orchestrates complete MemCA experiments: it wires the cloud
// platform (hosts, placement, co-location), the RUBBoS-style n-tier
// system, the client population, the memory-contention attack, the
// optional feedback controller, elastic scaling, and the monitoring stack
// into a single reproducible run, and distills the outcome into a Report.
package core

import (
	"fmt"
	"time"

	"memca/internal/attack"
	"memca/internal/control"
	"memca/internal/memmodel"
	"memca/internal/monitor"
	"memca/internal/queueing"
	"memca/internal/stats"
	"memca/internal/telemetry"
	"memca/internal/workload"
)

// Env selects which of the paper's two environments to model.
type Env int

// Environments.
const (
	// EnvPrivateCloud is the OpenStack/KVM testbed (Xeon E5-2603 v3).
	EnvPrivateCloud Env = iota + 1
	// EnvEC2 is the Amazon EC2 dedicated-host deployment (Xeon E5-2680).
	EnvEC2
)

// String implements fmt.Stringer.
func (e Env) String() string {
	switch e {
	case EnvPrivateCloud:
		return "private-cloud"
	case EnvEC2:
		return "ec2"
	default:
		return fmt.Sprintf("Env(%d)", int(e))
	}
}

// HostConfig returns the memory-subsystem model for the environment.
func (e Env) HostConfig() (memmodel.HostConfig, error) {
	switch e {
	case EnvPrivateCloud:
		return memmodel.XeonE5_2603v3(), nil
	case EnvEC2:
		return memmodel.EC2DedicatedHost(), nil
	default:
		return memmodel.HostConfig{}, fmt.Errorf("core: unknown environment %v", e)
	}
}

// AttackSpec configures the adversary.
type AttackSpec struct {
	// Kind selects memory locking (the paper's evaluation choice) or bus
	// saturation.
	Kind memmodel.AttackKind
	// Params are the initial (R, L, I) knobs.
	Params attack.Params
	// AdversaryVMs is how many co-located attack VMs to place (the paper
	// needs only one or a few).
	AdversaryVMs int
}

// Validate reports the first attack-spec error, or nil.
func (s AttackSpec) Validate() error {
	if s.Kind != memmodel.AttackBusSaturation && s.Kind != memmodel.AttackMemoryLock {
		return fmt.Errorf("core: unknown attack kind %v", s.Kind)
	}
	if err := s.Params.Validate(); err != nil {
		return err
	}
	if s.AdversaryVMs <= 0 {
		return fmt.Errorf("core: AdversaryVMs must be positive, got %d", s.AdversaryVMs)
	}
	return nil
}

// FeedbackSpec enables the MemCA-BE control loop.
type FeedbackSpec struct {
	// Goal is the damage/stealth objective.
	Goal control.Goal
	// Bounds clamp the commander's search.
	Bounds control.Bounds
	// Prober configures tail measurement.
	Prober control.ProberConfig
	// DecisionEvery separates commander decisions.
	DecisionEvery time.Duration
}

// DefaultFeedback returns the paper's goal: client p95 above 1 s with
// millibottlenecks under 1 s, decided every 10 s.
func DefaultFeedback() FeedbackSpec {
	return FeedbackSpec{
		Goal:          control.Goal{Percentile: 95, TargetRT: time.Second, MaxMillibottleneck: time.Second},
		Bounds:        control.DefaultBounds(),
		Prober:        control.DefaultProberConfig(),
		DecisionEvery: 10 * time.Second,
	}
}

// Validate reports the first feedback-spec error, or nil.
func (s FeedbackSpec) Validate() error {
	if err := s.Goal.Validate(); err != nil {
		return err
	}
	if err := s.Bounds.Validate(); err != nil {
		return err
	}
	if s.Prober.Period <= 0 || s.Prober.Window <= 0 {
		return fmt.Errorf("core: invalid prober config %+v", s.Prober)
	}
	if s.DecisionEvery <= 0 {
		return fmt.Errorf("core: DecisionEvery must be positive, got %v", s.DecisionEvery)
	}
	return nil
}

// ScalingSpec enables the cloud's elastic scaling during the run.
type ScalingSpec struct {
	// Trigger is the CloudWatch-style policy.
	Trigger monitor.AutoScalerConfig
	// MaxInstances caps the bottleneck tier's fleet.
	MaxInstances int
	// ProvisionDelay is instance boot time.
	ProvisionDelay time.Duration
}

// DefenseSpec enables countermeasures on the victim's host (see the
// defense package for the detection side).
type DefenseSpec struct {
	// SplitLockProtection traps the bus locks the memory-lock attack
	// relies on (the kernel split-lock mitigation).
	SplitLockProtection bool
	// VictimReservationMBps carves a dedicated bandwidth partition for
	// the victim VM (Intel MBA / Heracles style). Zero disables.
	VictimReservationMBps float64
}

// Config assembles one experiment.
type Config struct {
	// Seed makes the run reproducible.
	Seed int64
	// Env picks the modelled testbed.
	Env Env
	// Duration is the measured phase length (paper: 3 minutes).
	Duration time.Duration
	// Warmup runs before measurement starts and is discarded.
	Warmup time.Duration
	// Clients is the emulated user population (paper: 3500).
	Clients int
	// ThinkTime is the mean think time (paper: 7 s).
	ThinkTime time.Duration
	// Tiers overrides the default RUBBoS topology when non-nil.
	Tiers []queueing.TierConfig
	// Attack enables the adversary; nil runs the clean baseline.
	Attack *AttackSpec
	// Feedback enables the MemCA-BE control loop (requires Attack).
	Feedback *FeedbackSpec
	// Scaling enables elastic scaling of the bottleneck tier.
	Scaling *ScalingSpec
	// Defense enables host-side countermeasures on the victim host.
	Defense *DefenseSpec
	// RecordSeries keeps per-completion response-time points and enables
	// the fine-grained snapshot figure.
	RecordSeries bool
	// Trace enables per-request causal tracing (see internal/telemetry);
	// nil disables it, leaving the request path free of observer hooks.
	Trace *telemetry.Spec
	// LLCSamplePeriod, when positive, samples the victim and adversary
	// VMs' LLC miss rates (Figure 11).
	LLCSamplePeriod time.Duration
	// Arena, when non-nil, backs every stats object of the run (tier and
	// client samples, level integrators, the tracer's duration slab) with
	// recycled slab storage; see stats.Arena. It is a runtime-only knob —
	// the file-facing config schema (ConfigJSON) does not carry it. The
	// arena must not be Reset before the run's Report has been built:
	// the Report itself holds only heap copies and survives a Reset.
	Arena *stats.Arena
}

// DefaultConfig returns the paper's RUBBoS evaluation setup with the
// memory-lock attack at I = 2 s, L = 500 ms.
func DefaultConfig() Config {
	return Config{
		Seed:      1,
		Env:       EnvEC2,
		Duration:  3 * time.Minute,
		Warmup:    20 * time.Second,
		Clients:   3500,
		ThinkTime: 7 * time.Second,
		Attack: &AttackSpec{
			Kind: memmodel.AttackMemoryLock,
			Params: attack.Params{
				Intensity:   1,
				BurstLength: 500 * time.Millisecond,
				Interval:    2 * time.Second,
			},
			AdversaryVMs: 1,
		},
	}
}

// Validate reports the first configuration error, or nil.
func (c Config) Validate() error {
	if _, err := c.Env.HostConfig(); err != nil {
		return err
	}
	if c.Duration <= 0 {
		return fmt.Errorf("core: Duration must be positive, got %v", c.Duration)
	}
	if c.Warmup < 0 {
		return fmt.Errorf("core: Warmup must be non-negative, got %v", c.Warmup)
	}
	if c.Clients <= 0 {
		return fmt.Errorf("core: Clients must be positive, got %d", c.Clients)
	}
	if c.ThinkTime <= 0 {
		return fmt.Errorf("core: ThinkTime must be positive, got %v", c.ThinkTime)
	}
	if c.Attack != nil {
		if err := c.Attack.Validate(); err != nil {
			return err
		}
	}
	if c.Feedback != nil {
		if c.Attack == nil {
			return fmt.Errorf("core: Feedback requires Attack")
		}
		if err := c.Feedback.Validate(); err != nil {
			return err
		}
	}
	if c.Scaling != nil {
		if err := c.Scaling.Trigger.Validate(); err != nil {
			return err
		}
		if c.Scaling.MaxInstances <= 0 {
			return fmt.Errorf("core: Scaling.MaxInstances must be positive, got %d", c.Scaling.MaxInstances)
		}
	}
	if c.Defense != nil && c.Defense.VictimReservationMBps < 0 {
		return fmt.Errorf("core: VictimReservationMBps must be non-negative, got %v", c.Defense.VictimReservationMBps)
	}
	if c.LLCSamplePeriod < 0 {
		return fmt.Errorf("core: LLCSamplePeriod must be non-negative, got %v", c.LLCSamplePeriod)
	}
	if c.Trace != nil {
		if err := c.Trace.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// tierNames are the canonical 3-tier labels used across reports.
var tierNames = []string{"apache", "tomcat", "mysql"}

// probeClass is the request class the MemCA-BE prober uses: a database
// read, so the probe traverses the full critical path.
const probeClass = workload.ClassDBLight
