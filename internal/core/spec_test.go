package core

import (
	"strings"
	"testing"
	"time"

	"memca/internal/queueing"
	"memca/internal/sim"
	"memca/internal/spec"
)

func TestFromSpecRoundTrip(t *testing.T) {
	sys, err := spec.RUBBoSSystem().WithReplicas([]int{2, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	traffic := spec.Traffic{Clients: 2600, ThinkTime: time.Second}
	cfg, err := DefaultConfig().FromSpec(sys, traffic)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Clients != 2600 || cfg.ThinkTime != time.Second {
		t.Errorf("population not applied: %d clients, %v think", cfg.Clients, cfg.ThinkTime)
	}
	if cfg.Attack == nil || cfg.Seed != DefaultConfig().Seed {
		t.Error("FromSpec must carry the receiver's scenario over")
	}
	for i, tier := range cfg.Tiers {
		want := sys.Tiers[i]
		if tier.QueueLimit != want.PooledThreads() || tier.Servers != want.PooledServers() {
			t.Errorf("tier %d pooled as %d/%d, want %d/%d",
				i, tier.QueueLimit, tier.Servers, want.PooledThreads(), want.PooledServers())
		}
		if got := tier.Service.Mean(); got != want.Service {
			t.Errorf("tier %d service mean %v, want %v", i, got, want.Service)
		}
	}

	// Spec(FromSpec(sys, traffic)) is sys.Pooled() except for the demand
	// factors, which the config cannot see.
	back, backTraffic, err := cfg.Spec()
	if err != nil {
		t.Fatal(err)
	}
	pooled := sys.Pooled()
	for i, tier := range back.Tiers {
		want := pooled.Tiers[i]
		if tier.Name != want.Name || tier.Threads != want.Threads ||
			tier.Servers != want.Servers || tier.Service != want.Service || tier.Replicas != 1 {
			t.Errorf("tier %d round-tripped as %+v, want %+v", i, tier, want)
		}
	}
	if backTraffic.Clients != 2600 || backTraffic.ThinkTime != time.Second {
		t.Errorf("traffic round-tripped as %+v", backTraffic)
	}
	if len(backTraffic.TierMix) != 3 {
		t.Errorf("3-tier config should recover the RUBBoS mix, got %v", backTraffic.TierMix)
	}

	// FromSpec(cfg.Spec()) reproduces the config's topology exactly.
	again, err := cfg.FromSpec(back, backTraffic)
	if err != nil {
		t.Fatal(err)
	}
	for i, tier := range again.Tiers {
		orig := cfg.Tiers[i]
		if tier.QueueLimit != orig.QueueLimit || tier.Servers != orig.Servers ||
			tier.Service.Mean() != orig.Service.Mean() {
			t.Errorf("tier %d not reproduced: %+v vs %+v", i, tier, orig)
		}
	}
}

func TestSpecDefaultTopology(t *testing.T) {
	sys, traffic, err := DefaultConfig().Spec()
	if err != nil {
		t.Fatal(err)
	}
	pooled := spec.RUBBoSSystem().Pooled()
	if len(sys.Tiers) != len(pooled.Tiers) {
		t.Fatalf("default topology has %d tiers", len(sys.Tiers))
	}
	for i, tier := range sys.Tiers {
		if tier != pooled.Tiers[i] {
			t.Errorf("tier %d = %+v, want RUBBoS template %+v", i, tier, pooled.Tiers[i])
		}
	}
	if traffic.Clients != 3500 || traffic.ThinkTime != 7*time.Second {
		t.Errorf("traffic = %+v", traffic)
	}
}

func TestSpecRejectsUnboundedQueue(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Tiers = []queueing.TierConfig{{
		Name:       "open",
		QueueLimit: queueing.Infinite,
		Servers:    2,
		Service:    sim.NewExponential(time.Millisecond),
	}}
	_, _, err := cfg.Spec()
	if err == nil || !strings.Contains(err.Error(), "unbounded") {
		t.Errorf("Spec() = %v, want unbounded-queue error", err)
	}
}

func TestFromSpecRejectsInvalid(t *testing.T) {
	if _, err := DefaultConfig().FromSpec(spec.System{}, spec.RUBBoSTraffic()); err == nil {
		t.Error("expected error for empty system")
	}
	if _, err := DefaultConfig().FromSpec(spec.RUBBoSSystem(), spec.Traffic{}); err == nil {
		t.Error("expected error for empty traffic")
	}
}
