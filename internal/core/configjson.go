package core

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"memca/internal/attack"
	"memca/internal/memmodel"
	"memca/internal/monitor"
)

// ConfigJSON is the file-facing experiment schema: durations are Go
// duration strings ("500ms", "2s"), enums are lowercase names. It covers
// everything except custom tier topologies, which remain code-level.
type ConfigJSON struct {
	Seed      int64  `json:"seed"`
	Env       string `json:"env"`        // "ec2" or "private-cloud"
	Duration  string `json:"duration"`   // e.g. "3m"
	Warmup    string `json:"warmup"`     // e.g. "20s"
	Clients   int    `json:"clients"`    // e.g. 3500
	ThinkTime string `json:"think_time"` // e.g. "7s"

	Attack *struct {
		Kind         string  `json:"kind"` // "lock" or "saturation"
		Intensity    float64 `json:"intensity"`
		BurstLength  string  `json:"burst_length"`
		Interval     string  `json:"interval"`
		AdversaryVMs int     `json:"adversary_vms"`
	} `json:"attack,omitempty"`

	Feedback *struct {
		TargetP95          string `json:"target_p95"`
		MaxMillibottleneck string `json:"max_millibottleneck"`
		DecisionEvery      string `json:"decision_every"`
	} `json:"feedback,omitempty"`

	Scaling *struct {
		Threshold    float64 `json:"threshold"`
		MaxInstances int     `json:"max_instances"`
	} `json:"scaling,omitempty"`

	Defense *struct {
		SplitLockProtection   bool    `json:"split_lock_protection"`
		VictimReservationMBps float64 `json:"victim_reservation_mbps"`
	} `json:"defense,omitempty"`

	RecordSeries    bool   `json:"record_series,omitempty"`
	LLCSamplePeriod string `json:"llc_sample_period,omitempty"`
}

// LoadConfig reads a ConfigJSON file and converts it to a validated
// Config. Missing fields fall back to DefaultConfig values.
func LoadConfig(path string) (Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Config{}, fmt.Errorf("core: reading config: %w", err)
	}
	var j ConfigJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return Config{}, fmt.Errorf("core: parsing config %s: %w", path, err)
	}
	return j.ToConfig()
}

// parseDur parses a duration string, returning def for empty input.
func parseDur(s string, def time.Duration) (time.Duration, error) {
	if s == "" {
		return def, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("core: bad duration %q: %w", s, err)
	}
	return d, nil
}

// ToConfig converts the file schema into a validated Config.
func (j ConfigJSON) ToConfig() (Config, error) {
	def := DefaultConfig()
	cfg := Config{
		Seed:         j.Seed,
		Clients:      j.Clients,
		RecordSeries: j.RecordSeries,
	}
	if cfg.Seed == 0 {
		cfg.Seed = def.Seed
	}
	if cfg.Clients == 0 {
		cfg.Clients = def.Clients
	}
	switch j.Env {
	case "", "ec2":
		cfg.Env = EnvEC2
	case "private-cloud", "private":
		cfg.Env = EnvPrivateCloud
	default:
		return Config{}, fmt.Errorf("core: unknown env %q", j.Env)
	}
	var err error
	if cfg.Duration, err = parseDur(j.Duration, def.Duration); err != nil {
		return Config{}, err
	}
	if cfg.Warmup, err = parseDur(j.Warmup, def.Warmup); err != nil {
		return Config{}, err
	}
	if cfg.ThinkTime, err = parseDur(j.ThinkTime, def.ThinkTime); err != nil {
		return Config{}, err
	}
	if j.LLCSamplePeriod != "" {
		if cfg.LLCSamplePeriod, err = parseDur(j.LLCSamplePeriod, 0); err != nil {
			return Config{}, err
		}
	}

	if j.Attack != nil {
		spec := AttackSpec{AdversaryVMs: j.Attack.AdversaryVMs}
		if spec.AdversaryVMs == 0 {
			spec.AdversaryVMs = 1
		}
		switch j.Attack.Kind {
		case "", "lock", "memory-lock":
			spec.Kind = memmodel.AttackMemoryLock
		case "saturation", "bus-saturation":
			spec.Kind = memmodel.AttackBusSaturation
		default:
			return Config{}, fmt.Errorf("core: unknown attack kind %q", j.Attack.Kind)
		}
		spec.Params = attack.Params{Intensity: j.Attack.Intensity}
		if spec.Params.Intensity == 0 {
			spec.Params.Intensity = 1
		}
		if spec.Params.BurstLength, err = parseDur(j.Attack.BurstLength, def.Attack.Params.BurstLength); err != nil {
			return Config{}, err
		}
		if spec.Params.Interval, err = parseDur(j.Attack.Interval, def.Attack.Params.Interval); err != nil {
			return Config{}, err
		}
		cfg.Attack = &spec
	}

	if j.Feedback != nil {
		fb := DefaultFeedback()
		if fb.Goal.TargetRT, err = parseDur(j.Feedback.TargetP95, fb.Goal.TargetRT); err != nil {
			return Config{}, err
		}
		if fb.Goal.MaxMillibottleneck, err = parseDur(j.Feedback.MaxMillibottleneck, fb.Goal.MaxMillibottleneck); err != nil {
			return Config{}, err
		}
		if fb.DecisionEvery, err = parseDur(j.Feedback.DecisionEvery, fb.DecisionEvery); err != nil {
			return Config{}, err
		}
		cfg.Feedback = &fb
	}

	if j.Scaling != nil {
		trigger := monitor.DefaultAutoScaler()
		if j.Scaling.Threshold > 0 {
			trigger.Threshold = j.Scaling.Threshold
		}
		max := j.Scaling.MaxInstances
		if max == 0 {
			max = 4
		}
		cfg.Scaling = &ScalingSpec{Trigger: trigger, MaxInstances: max}
	}

	if j.Defense != nil {
		cfg.Defense = &DefenseSpec{
			SplitLockProtection:   j.Defense.SplitLockProtection,
			VictimReservationMBps: j.Defense.VictimReservationMBps,
		}
	}

	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}
