package core

import (
	"testing"
	"time"

	"memca/internal/attack"
	"memca/internal/memmodel"
	"memca/internal/monitor"
)

// fastConfig returns a reduced-horizon run that keeps the full client
// population dynamics (same offered load per tier) while staying quick.
func fastConfig() Config {
	cfg := DefaultConfig()
	cfg.Duration = 60 * time.Second
	cfg.Warmup = 10 * time.Second
	return cfg
}

func TestConfigValidation(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	mutations := []struct {
		name   string
		mutate func(*Config)
	}{
		{"bad env", func(c *Config) { c.Env = 0 }},
		{"zero duration", func(c *Config) { c.Duration = 0 }},
		{"negative warmup", func(c *Config) { c.Warmup = -time.Second }},
		{"zero clients", func(c *Config) { c.Clients = 0 }},
		{"zero think", func(c *Config) { c.ThinkTime = 0 }},
		{"bad attack kind", func(c *Config) { c.Attack.Kind = 0 }},
		{"bad attack params", func(c *Config) { c.Attack.Params = attack.Params{} }},
		{"zero adversaries", func(c *Config) { c.Attack.AdversaryVMs = 0 }},
		{"feedback without attack", func(c *Config) {
			c.Attack = nil
			fb := DefaultFeedback()
			c.Feedback = &fb
		}},
		{"bad feedback", func(c *Config) {
			fb := DefaultFeedback()
			fb.DecisionEvery = 0
			c.Feedback = &fb
		}},
		{"bad scaling trigger", func(c *Config) {
			c.Scaling = &ScalingSpec{Trigger: monitor.AutoScalerConfig{}, MaxInstances: 2}
		}},
		{"zero scaling max", func(c *Config) {
			c.Scaling = &ScalingSpec{Trigger: monitor.DefaultAutoScaler(), MaxInstances: 0}
		}},
		{"negative llc period", func(c *Config) { c.LLCSamplePeriod = -time.Second }},
	}
	for _, tc := range mutations {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tc.mutate(&cfg)
			if _, err := NewExperiment(cfg); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestBaselineRun(t *testing.T) {
	cfg := fastConfig()
	cfg.Attack = nil
	x, err := NewExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := x.Run()
	if err != nil {
		t.Fatal(err)
	}
	// The paper's baseline: every request within ~100 ms.
	if rep.Client.P95 > 100*time.Millisecond {
		t.Errorf("baseline client p95 = %v, want <= 100ms", rep.Client.P95)
	}
	if rep.Drops != 0 {
		t.Errorf("baseline dropped %d requests", rep.Drops)
	}
	if rep.GoalMet {
		t.Error("baseline cannot meet the damage goal")
	}
	if rep.Bursts != 0 || rep.AttackKind != "" {
		t.Error("baseline report carries attack fields")
	}
	// Moderate utilization at every granularity.
	for _, v := range rep.VictimUtilization {
		if v.Mean < 0.3 || v.Mean > 0.7 {
			t.Errorf("baseline mysql CPU @%v mean = %v, want moderate", v.Granularity, v.Mean)
		}
	}
}

func TestAttackRunMeetsDamageGoal(t *testing.T) {
	x, err := NewExperiment(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := x.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Figure 2 headline: client p95 beyond 1 second.
	if !rep.GoalMet {
		t.Errorf("attack did not meet damage goal: client p95 = %v", rep.Client.P95)
	}
	if rep.Drops == 0 || rep.Retransmissions == 0 {
		t.Error("attack produced no drops/retransmissions")
	}
	if rep.Bursts < 25 {
		t.Errorf("only %d bursts in 60s at I=2s", rep.Bursts)
	}
	if rep.LastDegradation <= 0 || rep.LastDegradation >= 0.5 {
		t.Errorf("degradation index %v, want strong (well below 0.5)", rep.LastDegradation)
	}
	// Adversary duty matches L/I = 25%.
	if rep.AdversaryDuty < 0.2 || rep.AdversaryDuty > 0.3 {
		t.Errorf("adversary duty %v, want ~0.25", rep.AdversaryDuty)
	}
}

func TestTailAmplificationOrdering(t *testing.T) {
	x, err := NewExperiment(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := x.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tiers) != 3 {
		t.Fatalf("got %d tiers", len(rep.Tiers))
	}
	apache, tomcat, mysql := rep.Tiers[0].Summary, rep.Tiers[1].Summary, rep.Tiers[2].Summary
	// Figure 2: the tail amplifies from MySQL through Tomcat and Apache
	// to the client. Allow a tiny tolerance for class-mix dilution ties.
	tol := 5 * time.Millisecond
	if mysql.P95 > tomcat.P95+tol || tomcat.P95 > apache.P95+tol || apache.P95 > rep.Client.P95+tol {
		t.Errorf("p95 amplification violated: mysql %v, tomcat %v, apache %v, client %v",
			mysql.P95, tomcat.P95, apache.P95, rep.Client.P95)
	}
	// The client's tail is dominated by retransmissions: a visible jump
	// past every in-system tier.
	if rep.Client.P95 < 2*apache.P95 {
		t.Errorf("client p95 %v not well above apache %v (no retransmission amplification)",
			rep.Client.P95, apache.P95)
	}
	// Nonlinearity of the tail: p99 much larger than p50 under attack.
	if rep.Client.P99 < 10*rep.Client.P50 {
		t.Errorf("client tail not long: p50 %v, p99 %v", rep.Client.P50, rep.Client.P99)
	}
}

func TestStealthinessUnderCoarseMonitoring(t *testing.T) {
	x, err := NewExperiment(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := x.Run()
	if err != nil {
		t.Fatal(err)
	}
	var coarse, fine *UtilizationView
	for i := range rep.VictimUtilization {
		v := &rep.VictimUtilization[i]
		switch v.Granularity {
		case monitor.GranularityCloud:
			coarse = v
		case monitor.GranularityFine:
			fine = v
		}
	}
	if coarse == nil || fine == nil {
		t.Fatal("missing utilization views")
	}
	// Figure 10: coarse monitoring sees a moderate flat signal below the
	// 85% scaling threshold; fine monitoring sees transient saturation.
	if coarse.Max > 0.85 {
		t.Errorf("1-min max utilization %v would trigger auto scaling", coarse.Max)
	}
	if fine.Max < 0.99 {
		t.Errorf("50ms max utilization %v, want ~1.0 (millibottlenecks visible)", fine.Max)
	}
}

func TestAttackBypassesElasticScaling(t *testing.T) {
	cfg := fastConfig()
	cfg.Duration = 4 * time.Minute
	cfg.Scaling = &ScalingSpec{Trigger: monitor.DefaultAutoScaler(), MaxInstances: 4}
	x, err := NewExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := x.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.ScaleEvents) != 0 {
		t.Errorf("MemCA triggered %d scale events", len(rep.ScaleEvents))
	}
	if rep.Instances != 1 {
		t.Errorf("fleet grew to %d under MemCA", rep.Instances)
	}
	// And the attack still did its damage while evading.
	if !rep.GoalMet {
		t.Errorf("attack failed its damage goal while evading: p95 = %v", rep.Client.P95)
	}
}

func TestFeedbackLoopReachesGoal(t *testing.T) {
	cfg := fastConfig()
	cfg.Duration = 5 * time.Minute
	// Start far too weak; the commander must escalate to the goal.
	cfg.Attack.Params = attack.Params{
		Intensity:   0.3,
		BurstLength: 60 * time.Millisecond,
		Interval:    4 * time.Second,
	}
	fb := DefaultFeedback()
	fb.DecisionEvery = 5 * time.Second
	cfg.Feedback = &fb
	x, err := NewExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := x.Run()
	if err != nil {
		t.Fatal(err)
	}
	if x.Commander().Decisions() < 10 {
		t.Errorf("only %d commander decisions in 3 minutes", x.Commander().Decisions())
	}
	if x.Commander().Escalations() == 0 {
		t.Error("commander never escalated from a weak start")
	}
	final := x.Burster().Params()
	if final.BurstLength <= cfg.Attack.Params.BurstLength {
		t.Errorf("burst length did not grow: %v", final.BurstLength)
	}
	// The prober must have seen the escalated tail.
	if x.Prober().Total() == 0 {
		t.Error("prober recorded nothing")
	}
	// Damage by the end of the run (last third) should be near goal:
	// check the smoothed estimate rather than the whole-run percentile,
	// which mixes in the weak early phase.
	if got := x.Commander().SmoothedTailRT(); got < 500*time.Millisecond {
		t.Errorf("smoothed tail RT %v, want approaching 1s", got)
	}
	_ = rep
}

func TestLLCProfiles(t *testing.T) {
	run := func(kind memmodel.AttackKind) (victim, adversary []float64) {
		cfg := fastConfig()
		cfg.Attack.Kind = kind
		cfg.LLCSamplePeriod = 50 * time.Millisecond
		x, err := NewExperiment(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := x.Run(); err != nil {
			t.Fatal(err)
		}
		for _, p := range x.LLCVictimSeries().Series().Points {
			victim = append(victim, p.V)
		}
		for _, p := range x.LLCAdversarySeries().Series().Points {
			adversary = append(adversary, p.V)
		}
		return victim, adversary
	}

	maxOf := func(vs []float64) float64 {
		m := 0.0
		for _, v := range vs {
			if v > m {
				m = v
			}
		}
		return m
	}

	// Bus saturation: the adversary's misses spike hugely during bursts
	// and the victim's miss rate shows the attack (Figure 11a).
	satVictim, satAdv := run(memmodel.AttackBusSaturation)
	if maxOf(satAdv) < 1e7 {
		t.Errorf("saturating adversary max misses %v, want streaming-scale", maxOf(satAdv))
	}
	base := memmodel.EC2DedicatedHost().VictimBaselineMissRate
	if maxOf(satVictim) <= base {
		t.Error("bus saturation left no trace in victim LLC misses")
	}

	// Memory lock: near-invisible to the LLC profiler (Figure 11b).
	lockVictim, lockAdv := run(memmodel.AttackMemoryLock)
	if maxOf(lockAdv) > 1e5 {
		t.Errorf("locking adversary max misses %v, want negligible", maxOf(lockAdv))
	}
	if maxOf(lockVictim) > base {
		t.Errorf("memory lock inflated victim misses to %v", maxOf(lockVictim))
	}
}

func TestRunTwiceFails(t *testing.T) {
	cfg := fastConfig()
	cfg.Duration = 5 * time.Second
	cfg.Warmup = time.Second
	cfg.Clients = 100
	x, err := NewExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := x.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := x.Run(); err == nil {
		t.Error("second Run accepted")
	}
}

func TestDeterministicReport(t *testing.T) {
	run := func() *Report {
		cfg := fastConfig()
		cfg.Duration = 20 * time.Second
		cfg.Clients = 500
		x, err := NewExperiment(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := x.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.Client.P95 != b.Client.P95 || a.Drops != b.Drops || a.Requests != b.Requests {
		t.Errorf("same seed diverged: %+v vs %+v", a.Client, b.Client)
	}
}

func TestPrivateCloudEnvironment(t *testing.T) {
	// Figure 2b: the private cloud shows the same attack impact.
	cfg := fastConfig()
	cfg.Env = EnvPrivateCloud
	x, err := NewExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := x.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.GoalMet {
		t.Errorf("private-cloud attack p95 = %v, want > 1s", rep.Client.P95)
	}
	if rep.Env != "private-cloud" {
		t.Errorf("env label %q", rep.Env)
	}
}

func TestReportRender(t *testing.T) {
	cfg := fastConfig()
	cfg.Duration = 10 * time.Second
	cfg.Clients = 200
	x, err := NewExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := x.Run()
	if err != nil {
		t.Fatal(err)
	}
	out := rep.Render()
	for _, want := range []string{"client", "apache", "tomcat", "mysql", "memory-lock", "mysql CPU"} {
		if !contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestReportPagesAndAnalyticalCheck(t *testing.T) {
	x, err := NewExperiment(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := x.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Pages) != 9 {
		t.Fatalf("pages = %d, want 9", len(rep.Pages))
	}
	var total int
	for _, p := range rep.Pages {
		total += p.Summary.Count
	}
	if total != rep.Client.Count {
		t.Errorf("page counts sum to %d, client count %d", total, rep.Client.Count)
	}

	ac := rep.Analytical
	if ac == nil {
		t.Fatal("analytical check missing on an attacked run")
	}
	if ac.D <= 0 || ac.D >= 1 {
		t.Errorf("analytical D = %v", ac.D)
	}
	if !ac.QueuesAllFill {
		t.Error("model should predict full overflow for the default attack")
	}
	// The model's damage period must be positive and under the burst
	// length, and the millibottleneck must respect the stealth bound.
	if ac.DamagePeriod <= 0 || ac.DamagePeriod >= 500*time.Millisecond {
		t.Errorf("damage period %v out of (0, 500ms)", ac.DamagePeriod)
	}
	if ac.Millibottleneck >= time.Second {
		t.Errorf("millibottleneck %v, want sub-second", ac.Millibottleneck)
	}
	// And the measured drops corroborate the predicted hold-on stage.
	if rep.Drops == 0 {
		t.Error("predicted hold-on stage but measured no drops")
	}
}

func TestBaselineReportHasNoAnalyticalCheck(t *testing.T) {
	cfg := fastConfig()
	cfg.Attack = nil
	cfg.Duration = 20 * time.Second
	cfg.Clients = 500
	x, err := NewExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := x.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Analytical != nil {
		t.Error("baseline report carries an analytical check")
	}
}
