package core

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"memca/internal/memmodel"
)

func writeConfig(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "cfg.json")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadConfigFull(t *testing.T) {
	path := writeConfig(t, `{
		"seed": 7,
		"env": "private-cloud",
		"duration": "90s",
		"warmup": "5s",
		"clients": 500,
		"think_time": "2s",
		"attack": {
			"kind": "saturation",
			"intensity": 0.8,
			"burst_length": "300ms",
			"interval": "3s",
			"adversary_vms": 2
		},
		"feedback": {
			"target_p95": "800ms",
			"max_millibottleneck": "900ms",
			"decision_every": "4s"
		},
		"scaling": {"threshold": 0.9, "max_instances": 3},
		"defense": {"split_lock_protection": true, "victim_reservation_mbps": 2500},
		"record_series": true,
		"llc_sample_period": "50ms"
	}`)
	cfg, err := LoadConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 7 || cfg.Env != EnvPrivateCloud || cfg.Clients != 500 {
		t.Errorf("basic fields wrong: %+v", cfg)
	}
	if cfg.Duration != 90*time.Second || cfg.Warmup != 5*time.Second || cfg.ThinkTime != 2*time.Second {
		t.Errorf("durations wrong: %+v", cfg)
	}
	if cfg.Attack == nil || cfg.Attack.Kind != memmodel.AttackBusSaturation ||
		cfg.Attack.Params.Intensity != 0.8 || cfg.Attack.Params.BurstLength != 300*time.Millisecond ||
		cfg.Attack.Params.Interval != 3*time.Second || cfg.Attack.AdversaryVMs != 2 {
		t.Errorf("attack wrong: %+v", cfg.Attack)
	}
	if cfg.Feedback == nil || cfg.Feedback.Goal.TargetRT != 800*time.Millisecond ||
		cfg.Feedback.DecisionEvery != 4*time.Second {
		t.Errorf("feedback wrong: %+v", cfg.Feedback)
	}
	if cfg.Scaling == nil || cfg.Scaling.Trigger.Threshold != 0.9 || cfg.Scaling.MaxInstances != 3 {
		t.Errorf("scaling wrong: %+v", cfg.Scaling)
	}
	if cfg.Defense == nil || !cfg.Defense.SplitLockProtection || cfg.Defense.VictimReservationMBps != 2500 {
		t.Errorf("defense wrong: %+v", cfg.Defense)
	}
	if !cfg.RecordSeries || cfg.LLCSamplePeriod != 50*time.Millisecond {
		t.Errorf("extras wrong: %+v", cfg)
	}
}

func TestLoadConfigDefaults(t *testing.T) {
	path := writeConfig(t, `{"attack": {}}`)
	cfg, err := LoadConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	def := DefaultConfig()
	if cfg.Env != def.Env || cfg.Duration != def.Duration || cfg.Clients != def.Clients {
		t.Errorf("defaults not applied: %+v", cfg)
	}
	if cfg.Attack == nil || cfg.Attack.Kind != memmodel.AttackMemoryLock ||
		cfg.Attack.Params != def.Attack.Params || cfg.Attack.AdversaryVMs != 1 {
		t.Errorf("attack defaults wrong: %+v", cfg.Attack)
	}
}

func TestLoadConfigBaseline(t *testing.T) {
	path := writeConfig(t, `{"duration": "30s"}`)
	cfg, err := LoadConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Attack != nil {
		t.Error("attack present without an attack stanza")
	}
	// The loaded config must actually run.
	cfg.Clients = 100
	cfg.Warmup = time.Second
	x, err := NewExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := x.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestLoadConfigErrors(t *testing.T) {
	cases := []struct {
		name, body string
	}{
		{"bad json", `{`},
		{"bad env", `{"env": "azure"}`},
		{"bad duration", `{"duration": "three minutes"}`},
		{"bad attack kind", `{"attack": {"kind": "rowhammer"}}`},
		{"bad burst", `{"attack": {"burst_length": "xx"}}`},
		{"feedback without attack", `{"feedback": {}}`},
		{"negative reservation", `{"attack": {}, "defense": {"victim_reservation_mbps": -5}}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := writeConfig(t, tc.body)
			if _, err := LoadConfig(path); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
	if _, err := LoadConfig(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}
