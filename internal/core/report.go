package core

import (
	"fmt"
	"strings"
	"time"

	"memca/internal/analytical"
	"memca/internal/monitor"
	"memca/internal/stats"
	"memca/internal/trace"
	"memca/internal/workload"
)

// FigurePercentiles is the percentile grid used by the paper's tail plots
// (Figures 2 and 7).
var FigurePercentiles = []float64{50, 60, 70, 75, 80, 85, 90, 92, 94, 95, 96, 97, 98, 99, 99.5, 99.9}

// TierReport summarizes one tier's measured response times.
type TierReport struct {
	Name    string        `json:"name"`
	Summary stats.Summary `json:"summary"`
	// Curve holds the tier's percentile response times on
	// FigurePercentiles.
	Curve []time.Duration `json:"curve"`
}

// UtilizationView is one monitoring granularity's picture of the victim's
// CPU (the paper's Figure 10 panels).
type UtilizationView struct {
	Granularity time.Duration `json:"granularity"`
	// Mean is the average across buckets.
	Mean float64 `json:"mean"`
	// Max is the largest bucket.
	Max float64 `json:"max"`
	// Buckets is the full sampled series.
	Buckets []stats.Bucket `json:"buckets"`
}

// PageReport is one RUBBoS page type's client-side latency summary.
type PageReport struct {
	Name    string        `json:"name"`
	Summary stats.Summary `json:"summary"`
}

// AnalyticalCheck is the closed-form model's prediction for the attack
// the experiment actually ran, computed from the same tier parameters and
// the measured arrival rates — the model-vs-measurement cross-check of
// Section IV-B, attached to every attacked run.
type AnalyticalCheck struct {
	// D is the degradation index fed to the model (the injector's
	// last measured burst degradation).
	D float64 `json:"d"`
	// TotalFill, DamagePeriod, Millibottleneck and Impact are the
	// Equations (4)-(10) outputs.
	TotalFill       time.Duration `json:"total_fill"`
	DamagePeriod    time.Duration `json:"damage_period"`
	Millibottleneck time.Duration `json:"millibottleneck"`
	Impact          float64       `json:"impact"`
	// QueuesAllFill reports whether the model expects drops.
	QueuesAllFill bool `json:"queues_all_fill"`
}

// Report is the distilled outcome of one experiment.
type Report struct {
	// Env and attack echo the configuration for self-description.
	Env        string `json:"env"`
	AttackKind string `json:"attack_kind,omitempty"`

	// Client summarizes end-user response times (includes
	// retransmission delay).
	Client stats.Summary `json:"client"`
	// ClientCurve is the client percentile curve on FigurePercentiles.
	ClientCurve []time.Duration `json:"client_curve"`
	// Tiers lists per-tier reports front to back.
	Tiers []TierReport `json:"tiers"`
	// Pages breaks the client latency down by RUBBoS page type.
	Pages []PageReport `json:"pages"`
	// Analytical is the Equations (4)-(10) cross-check (nil for
	// baselines and custom topologies).
	Analytical *AnalyticalCheck `json:"analytical,omitempty"`

	// Requests/Drops/Retransmissions/Failures account for the workload.
	Requests        uint64 `json:"requests"`
	Drops           uint64 `json:"drops"`
	Retransmissions uint64 `json:"retransmissions"`
	Failures        uint64 `json:"failures"`

	// Bursts is how many attack bursts fired (0 for baselines).
	Bursts int `json:"bursts"`
	// AdversaryDuty is the adversary VM's average activity (L/I).
	AdversaryDuty float64 `json:"adversary_duty"`
	// LastDegradation is the most recent burst's degradation index D.
	LastDegradation float64 `json:"last_degradation,omitempty"`

	// VictimUtilization shows the bottleneck tier's CPU at the three
	// monitoring granularities over the measured window.
	VictimUtilization []UtilizationView `json:"victim_utilization"`
	// ScaleEvents lists elastic-scaling actions (empty = bypassed).
	ScaleEvents []monitor.ScaleEvent `json:"scale_events"`
	// Instances is the final fleet size of the bottleneck tier.
	Instances int `json:"instances"`

	// GoalMet reports whether the damage goal (p95 over the feedback
	// target, or over 1 s by default) was reached.
	GoalMet bool `json:"goal_met"`
}

func (x *Experiment) buildReport(from, to time.Duration) (*Report, error) {
	r := &Report{Env: x.cfg.Env.String()}
	if x.cfg.Attack != nil {
		r.AttackKind = x.cfg.Attack.Kind.String()
	}

	r.Client = x.gen.ClientRT().Summarize()
	r.ClientCurve = x.gen.ClientRT().PercentileCurve(FigurePercentiles)
	for i := 0; i < x.network.NumTiers(); i++ {
		name, err := x.network.TierName(i)
		if err != nil {
			return nil, err
		}
		sample, err := x.network.TierRT(i)
		if err != nil {
			return nil, err
		}
		r.Tiers = append(r.Tiers, TierReport{
			Name:    name,
			Summary: sample.Summarize(),
			Curve:   sample.PercentileCurve(FigurePercentiles),
		})
	}

	profile := x.gen.Profile()
	for i, page := range profile.Pages {
		sample, err := x.gen.PageRT(i)
		if err != nil {
			return nil, err
		}
		r.Pages = append(r.Pages, PageReport{Name: page.Name, Summary: sample.Summarize()})
	}

	r.Requests = x.gen.Requests()
	r.Drops = x.gen.Drops()
	r.Retransmissions = x.gen.Retransmissions()
	r.Failures = x.gen.Failures()

	if x.burster != nil {
		r.Bursts = x.burster.Bursts()
		r.AdversaryDuty = x.burster.Busy().Utilization(from, to)
		r.LastDegradation = x.injector.BurstD
	}

	// Victim CPU utilization at the three granularities, over the
	// measured window (shifted so buckets start at 0 for export).
	busy, err := x.network.TierBusy(x.victimTier())
	if err != nil {
		return nil, err
	}
	servers := float64(x.victimServers())
	source := func(wFrom, wTo time.Duration) float64 {
		return busy.WindowAverage(from+wFrom, from+wTo) / servers
	}
	horizon := to - from
	for _, g := range []time.Duration{monitor.GranularityCloud, monitor.GranularityUser, monitor.GranularityFine} {
		if g > horizon {
			continue
		}
		sampler, err := monitor.NewSampler("cpu", g, source)
		if err != nil {
			return nil, err
		}
		buckets, err := sampler.Collect(horizon)
		if err != nil {
			return nil, err
		}
		view := UtilizationView{Granularity: g}
		for _, b := range buckets {
			view.Mean += b.Mean
			if b.Mean > view.Max {
				view.Max = b.Mean
			}
		}
		if len(buckets) > 0 {
			view.Mean /= float64(len(buckets))
		}
		// Keep full buckets only for the coarse views; the 50 ms series
		// can run to thousands of points and belongs in CSV exports.
		if g >= monitor.GranularityUser {
			view.Buckets = buckets
		}
		r.VictimUtilization = append(r.VictimUtilization, view)
	}

	r.Instances = 1
	if x.scaling != nil {
		r.ScaleEvents = x.scaling.Events()
		r.Instances = x.scaling.Instances()
	}

	if x.cfg.Attack != nil {
		if check, ok := x.analyticalCheck(from, to); ok {
			r.Analytical = check
		}
	}

	target := time.Second
	if x.cfg.Feedback != nil {
		target = x.cfg.Feedback.Goal.TargetRT
	}
	r.GoalMet = r.Client.P95 > target
	return r, nil
}

// analyticalCheck rebuilds the Section IV-B model from the experiment's
// tier configuration and measured arrival rates, then evaluates Equations
// (4)-(10) for the attack that actually ran.
func (x *Experiment) analyticalCheck(from, to time.Duration) (*AnalyticalCheck, bool) {
	tiers := x.cfg.Tiers
	if tiers == nil {
		tiers = workload.RUBBoSTiers()
	}
	window := (to - from).Seconds()
	if window <= 0 {
		return nil, false
	}
	model := analytical.Model{}
	// λ_i = rate of requests terminating at tier i: the difference of
	// consecutive tiers' completion throughputs.
	completions := make([]float64, len(tiers))
	for i := range tiers {
		st, err := x.network.TierState(i)
		if err != nil {
			return nil, false
		}
		completions[i] = float64(st.Completions) / window
	}
	for i, tc := range tiers {
		if tc.Service == nil || tc.Service.Mean() <= 0 {
			return nil, false
		}
		terminate := completions[i]
		if i+1 < len(completions) {
			terminate -= completions[i+1]
		}
		if terminate < 0 {
			terminate = 0
		}
		model.Tiers = append(model.Tiers, analytical.Tier{
			Name:        tc.Name,
			Queue:       tc.QueueLimit,
			CapacityOFF: float64(tc.Servers) / tc.Service.Mean().Seconds(),
			ArrivalRate: terminate,
		})
	}
	d := x.injector.BurstD
	if d <= 0 || d >= 1 {
		return nil, false
	}
	pred, err := model.Predict(analytical.Attack{
		D: d,
		L: x.burster.Params().BurstLength,
		I: x.burster.Params().Interval,
	})
	if err != nil {
		return nil, false
	}
	return &AnalyticalCheck{
		D:               d,
		TotalFill:       pred.TotalFill,
		DamagePeriod:    pred.DamagePeriod,
		Millibottleneck: pred.Millibottleneck,
		Impact:          pred.Impact,
		QueuesAllFill:   pred.QueuesAllFill,
	}, true
}

// victimServers returns the bottleneck tier's station count.
func (x *Experiment) victimServers() int {
	tiers := x.cfg.Tiers
	if tiers == nil {
		// Default topology: read from the network config indirectly via
		// the workload defaults.
		return 2
	}
	return tiers[len(tiers)-1].Servers
}

// Render returns the report as human-readable text.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "environment: %s", r.Env)
	if r.AttackKind != "" {
		fmt.Fprintf(&b, "  attack: %s (%d bursts, duty %.1f%%, last D %.3f)",
			r.AttackKind, r.Bursts, r.AdversaryDuty*100, r.LastDegradation)
	} else {
		b.WriteString("  attack: none (baseline)")
	}
	b.WriteString("\n\n")

	tbl := trace.Table{Header: []string{"observer", "n", "mean", "p50", "p90", "p95", "p98", "p99", "max"}}
	row := func(name string, s stats.Summary) {
		tbl.Add(name,
			fmt.Sprintf("%d", s.Count),
			fmtDur(s.Mean), fmtDur(s.P50), fmtDur(s.P90),
			fmtDur(s.P95), fmtDur(s.P98), fmtDur(s.P99), fmtDur(s.Max))
	}
	row("client", r.Client)
	for _, t := range r.Tiers {
		row(t.Name, t.Summary)
	}
	b.WriteString(tbl.Render())
	b.WriteByte('\n')

	fmt.Fprintf(&b, "requests=%d drops=%d retransmissions=%d failures=%d\n",
		r.Requests, r.Drops, r.Retransmissions, r.Failures)
	for _, v := range r.VictimUtilization {
		fmt.Fprintf(&b, "mysql CPU @ %-8v mean=%.1f%% max=%.1f%%\n", v.Granularity, v.Mean*100, v.Max*100)
	}
	if r.ScaleEvents != nil {
		fmt.Fprintf(&b, "scale events: %d (fleet %d)\n", len(r.ScaleEvents), r.Instances)
	}
	if r.Analytical != nil {
		fmt.Fprintf(&b, "analytical (Eq 4-10, D=%.3f): fill %v, damage %v, P_MB %v, rho %.3f\n",
			r.Analytical.D, r.Analytical.TotalFill.Round(time.Millisecond),
			r.Analytical.DamagePeriod.Round(time.Millisecond),
			r.Analytical.Millibottleneck.Round(time.Millisecond), r.Analytical.Impact)
	}
	fmt.Fprintf(&b, "damage goal met: %v (client p95 = %v)\n", r.GoalMet, r.Client.P95.Round(time.Millisecond))
	return b.String()
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.0fµs", float64(d)/float64(time.Microsecond))
	}
}
