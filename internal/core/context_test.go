package core

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestRunContextPreCanceled pins the fail-fast path: a context that is
// already canceled yields no report and the context's own error.
func TestRunContextPreCanceled(t *testing.T) {
	cfg := fastConfig()
	x, err := NewExperiment(cfg)
	if err != nil {
		t.Fatalf("NewExperiment: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := x.RunContext(ctx)
	if rep != nil {
		t.Errorf("canceled run returned a report: %+v", rep)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

// TestRunContextMidRunCancel pins the periodic-check path: cancellation
// while the simulation is in flight aborts it with the context error and
// never surfaces a partial report as success.
func TestRunContextMidRunCancel(t *testing.T) {
	cfg := fastConfig()
	x, err := NewExperiment(cfg)
	if err != nil {
		t.Fatalf("NewExperiment: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	timer := time.AfterFunc(20*time.Millisecond, cancel)
	defer timer.Stop()
	defer cancel()
	rep, err := x.RunContext(ctx)
	if err == nil {
		// The run legitimately finished before the timer fired (slow
		// machines only); that is not a partial-report violation.
		if rep == nil {
			t.Error("nil error with nil report")
		}
		t.Skip("run finished before cancellation fired")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if rep != nil {
		t.Errorf("canceled run returned a partial report: %+v", rep)
	}
}

// TestRunContextNil pins that a nil context behaves like Background.
func TestRunContextNil(t *testing.T) {
	cfg := fastConfig()
	cfg.Duration = 5 * time.Second
	cfg.Warmup = time.Second
	cfg.Clients = 100
	x, err := NewExperiment(cfg)
	if err != nil {
		t.Fatalf("NewExperiment: %v", err)
	}
	rep, err := x.RunContext(nil) //nolint:staticcheck // nil tolerance is part of the contract
	if err != nil {
		t.Fatalf("RunContext(nil): %v", err)
	}
	if rep == nil {
		t.Fatal("nil report")
	}
}

// TestRunDelegatesToContext pins that the legacy Run entry point still
// produces a full report (it is now a RunContext delegate).
func TestRunDelegatesToContext(t *testing.T) {
	cfg := fastConfig()
	cfg.Duration = 5 * time.Second
	cfg.Warmup = time.Second
	cfg.Clients = 100
	x, err := NewExperiment(cfg)
	if err != nil {
		t.Fatalf("NewExperiment: %v", err)
	}
	rep, err := x.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Client.Count == 0 {
		t.Error("report has no client observations")
	}
}
