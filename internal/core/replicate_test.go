package core

import (
	"context"
	"encoding/json"
	"testing"
	"time"

	"memca/internal/sweep"
)

// reportFingerprint serializes a report for equality checks. JSON (not
// %#v) because Report holds pointers whose addresses are not stable.
func reportFingerprint(t *testing.T, r *Report) string {
	t.Helper()
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatalf("marshaling report: %v", err)
	}
	return string(data)
}

// replicateConfig returns a small, fast experiment for replication tests.
func replicateConfig() Config {
	cfg := DefaultConfig()
	cfg.Seed = 3
	cfg.Clients = 400
	cfg.Duration = 25 * time.Second
	cfg.Warmup = 5 * time.Second
	return cfg
}

// TestReplicateWorkerEquivalence pins that the replication set is a pure
// function of (config, runs): every worker count produces identical
// reports in identical order.
func TestReplicateWorkerEquivalence(t *testing.T) {
	cfg := replicateConfig()
	const runs = 5
	var ref []string
	for _, workers := range []int{1, 4, 8} {
		reps, err := Replicate(context.Background(), cfg, runs, ReplicateOptions{Workers: workers})
		if err != nil {
			t.Fatalf("Replicate with %d workers: %v", workers, err)
		}
		if len(reps) != runs {
			t.Fatalf("Replicate with %d workers returned %d replications, want %d", workers, len(reps), runs)
		}
		prints := make([]string, runs)
		for i, r := range reps {
			if r.Index != i {
				t.Errorf("replication %d has Index %d", i, r.Index)
			}
			if want := sweep.DeriveSeed(cfg.Seed, i); r.Seed != want {
				t.Errorf("replication %d has seed %d, want DeriveSeed = %d", i, r.Seed, want)
			}
			prints[i] = reportFingerprint(t, r.Report)
		}
		if ref == nil {
			ref = prints
			continue
		}
		for i := range prints {
			if prints[i] != ref[i] {
				t.Errorf("replication %d differs between 1 and %d workers", i, workers)
			}
		}
	}
}

// TestReplicateDistinctSeeds pins that replications actually differ: the
// derived seeds must produce distinct reports, or the replication set
// carries no statistical information.
func TestReplicateDistinctSeeds(t *testing.T) {
	cfg := replicateConfig()
	reps, err := Replicate(context.Background(), cfg, 3, ReplicateOptions{Workers: 2})
	if err != nil {
		t.Fatalf("Replicate: %v", err)
	}
	seen := make(map[string]int)
	for i, r := range reps {
		print := reportFingerprint(t, r.Report)
		if j, dup := seen[print]; dup {
			t.Errorf("replications %d and %d produced byte-identical reports; derived seeds are not flowing", j, i)
		}
		seen[print] = i
	}
}

// TestReplicateInvalidConfig pins error propagation: a config that fails
// validation surfaces the lowest run index.
func TestReplicateInvalidConfig(t *testing.T) {
	cfg := replicateConfig()
	cfg.Clients = -1
	_, err := Replicate(context.Background(), cfg, 4, ReplicateOptions{Workers: 4})
	if err == nil {
		t.Fatal("Replicate accepted an invalid config")
	}
}

// TestReplicateCancellation pins that a canceled context aborts the
// replication set with the context's error.
func TestReplicateCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Replicate(ctx, replicateConfig(), 4, ReplicateOptions{Workers: 2})
	if err == nil {
		t.Fatal("Replicate ignored a canceled context")
	}
}
