package core

import (
	"fmt"

	"memca/internal/queueing"
	"memca/internal/sim"
	"memca/internal/spec"
	"memca/internal/workload"
)

// FromSpec returns a copy of the config with the tier topology and the
// client population replaced by the shared spec description: each tier
// becomes a pooled multi-server station (QueueLimit = Threads * Replicas,
// Servers * Replicas stations behind an ideal balancer) with an
// exponential service-time distribution at the template's mean, and the
// traffic's base population becomes Clients/ThinkTime. Everything else —
// seed, environment, durations, attack, defense — carries over from the
// receiver, so the same spec can be replayed under any scenario.
//
// Forecast shaping (growth, diurnal peaks) is deliberately not applied:
// the config runs the base population. Use Traffic.AtPeak first to
// simulate the forecast peak the planner sized for.
func (c Config) FromSpec(sys spec.System, traffic spec.Traffic) (Config, error) {
	if err := sys.Validate(); err != nil {
		return Config{}, err
	}
	if err := traffic.Validate(); err != nil {
		return Config{}, err
	}
	tiers := make([]queueing.TierConfig, len(sys.Tiers))
	for i, t := range sys.Tiers {
		tiers[i] = queueing.TierConfig{
			Name:       t.Name,
			QueueLimit: t.PooledThreads(),
			Servers:    t.PooledServers(),
			Service:    sim.NewExponential(t.Service),
		}
	}
	c.Tiers = tiers
	c.Clients = traffic.Clients
	c.ThinkTime = traffic.ThinkTime
	return c, nil
}

// Spec returns the shared spec description of the config's system and
// traffic: the inverse of FromSpec up to pooling. Replica counts cannot
// be recovered from a pooled station, so the returned system is in
// Pooled normal form (Replicas 1, fleet-wide threads and servers);
// FromSpec(cfg.Spec()) reproduces the config's topology exactly, and
// sys.Pooled() == cfg.Spec() for any sys the config was built from. The
// default topology (nil Tiers) resolves to the RUBBoS templates,
// including their demand factors; explicit topologies default the demand
// factor to 1 (the spec cannot see the workload's class mix).
func (c Config) Spec() (spec.System, spec.Traffic, error) {
	tiers := c.Tiers
	if tiers == nil {
		sys := spec.RUBBoSSystem().Pooled()
		return sys, c.trafficSpec(), nil
	}
	sys := spec.System{Tiers: make([]spec.TierSpec, len(tiers))}
	for i, t := range tiers {
		if t.Service == nil {
			return spec.System{}, spec.Traffic{}, fmt.Errorf("core: tier %q has no service distribution", t.Name)
		}
		if t.QueueLimit == queueing.Infinite {
			return spec.System{}, spec.Traffic{}, fmt.Errorf("core: tier %q has an unbounded queue; specs describe finite pools", t.Name)
		}
		sys.Tiers[i] = spec.TierSpec{
			Name:         t.Name,
			Threads:      t.QueueLimit,
			Servers:      t.Servers,
			Service:      t.Service.Mean(),
			DemandFactor: 1,
			Replicas:     1,
		}
	}
	return sys, c.trafficSpec(), nil
}

// trafficSpec returns the config's population as a flat-forecast traffic
// spec with the RUBBoS tier mix when the topology is the default 3-tier
// one.
func (c Config) trafficSpec() spec.Traffic {
	t := spec.Traffic{Clients: c.Clients, ThinkTime: c.ThinkTime}
	n := len(c.Tiers)
	if c.Tiers == nil {
		n = len(workload.RUBBoSTiers())
	}
	if n == len(spec.RUBBoSTierMix) {
		mix := make([]float64, len(spec.RUBBoSTierMix))
		copy(mix, spec.RUBBoSTierMix)
		t.TierMix = mix
	}
	return t
}
