package core

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// FuzzConfigJSON drives arbitrary bytes through the file-facing config
// pipeline: JSON decoding, schema conversion, and validation. The
// invariants are (1) no input panics, and (2) every config the pipeline
// accepts passes Validate — ToConfig must never hand the experiment a
// configuration Validate would reject.
func FuzzConfigJSON(f *testing.F) {
	// Seed with the shipped example configs plus targeted schema corners.
	for _, name := range []string{"defended.json", "feedback-attack.json", "paper-default.json"} {
		if data, err := os.ReadFile(filepath.Join("..", "..", "configs", name)); err == nil {
			f.Add(data)
		}
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"seed":-1,"env":"private","clients":1}`))
	f.Add([]byte(`{"duration":"0s","warmup":"-5s"}`))
	f.Add([]byte(`{"env":"azure"}`))
	f.Add([]byte(`{"attack":{"kind":"saturation","intensity":2.5,"burst_length":"1h","interval":"1ns","adversary_vms":-3}}`))
	f.Add([]byte(`{"attack":{"kind":"lock","burst_length":"bogus"}}`))
	f.Add([]byte(`{"feedback":{"target_p95":"10s","decision_every":"0s"}}`))
	f.Add([]byte(`{"scaling":{"threshold":-0.5,"max_instances":0}}`))
	f.Add([]byte(`{"defense":{"split_lock_protection":true,"victim_reservation_mbps":-1}}`))
	f.Add([]byte(`{"llc_sample_period":"50ms","record_series":true}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var j ConfigJSON
		if err := json.Unmarshal(data, &j); err != nil {
			return // not JSON: out of scope
		}
		cfg, err := j.ToConfig()
		if err != nil {
			return // rejected: fine, as long as it didn't panic
		}
		if verr := cfg.Validate(); verr != nil {
			t.Errorf("ToConfig accepted %q but Validate rejects the result: %v", data, verr)
		}
	})
}
