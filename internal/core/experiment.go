package core

import (
	"context"
	"fmt"
	"time"

	"memca/internal/attack"
	"memca/internal/cloud"
	"memca/internal/control"
	"memca/internal/memmodel"
	"memca/internal/monitor"
	"memca/internal/queueing"
	"memca/internal/sim"
	"memca/internal/telemetry"
	"memca/internal/workload"
)

// Experiment is one fully wired MemCA run. Build with NewExperiment, run
// once with Run, then inspect the Report and the exposed components.
type Experiment struct {
	cfg      Config
	engine   *sim.Engine
	platform *cloud.Platform
	network  *queueing.Network
	gen      *workload.Generator

	// Attack-side components (nil without an AttackSpec).
	injector  *attack.MemoryInjector
	burster   *attack.Burster
	prober    *control.Prober
	commander *control.Commander
	scaling   *cloud.ScalingGroup
	victim    *cloud.HostNode

	llcVictim    *monitor.PeriodicSampler
	llcAdversary *monitor.PeriodicSampler

	tracer *telemetry.Tracer

	ran bool
}

// NewExperiment validates the configuration and wires every component.
func NewExperiment(cfg Config) (*Experiment, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	x := &Experiment{cfg: cfg}
	x.engine = sim.NewEngine(cfg.Seed)

	// Cloud platform: one dedicated host per tier (the paper's Figure 8
	// topology), the web/app/db VMs placed on them, adversaries
	// co-located with MySQL.
	hostCfg, err := cfg.Env.HostConfig()
	if err != nil {
		return nil, err
	}
	x.platform = cloud.NewPlatform()
	for i, name := range tierNames {
		if _, err := x.platform.AddHost(fmt.Sprintf("host%d", i+1), hostCfg); err != nil {
			return nil, fmt.Errorf("core: adding host for %s: %w", name, err)
		}
	}
	instType := cloud.C3Large()
	if cfg.Env == EnvPrivateCloud {
		instType = cloud.PrivateCloudVM()
	}
	for i, name := range tierNames {
		if err := x.platform.Place(name, fmt.Sprintf("host%d", i+1), instType, 0); err != nil {
			return nil, fmt.Errorf("core: placing %s: %w", name, err)
		}
	}
	x.victim, err = x.platform.HostOf("mysql")
	if err != nil {
		return nil, err
	}

	// n-tier system and client population.
	tiers := cfg.Tiers
	if tiers == nil {
		tiers = workload.RUBBoSTiers()
	}
	// The observer interface fields are only set when tracing is enabled:
	// assigning a nil *Tracer would produce a non-nil interface and charge
	// every lifecycle point a virtual call into a nil receiver.
	netCfg := queueing.Config{
		Mode:    queueing.ModeNTierRPC,
		Tiers:   tiers,
		Classes: workload.RUBBoSClasses(),
		Arena:   cfg.Arena,
	}
	genCfg := workload.GeneratorConfig{
		Clients:    cfg.Clients,
		ThinkTime:  sim.NewExponential(cfg.ThinkTime),
		Profile:    workload.RUBBoSProfile(),
		Retransmit: queueing.DefaultRetransmit(),
		RampUp:     10 * time.Second,
		Arena:      cfg.Arena,
	}
	if cfg.Trace != nil {
		x.tracer, err = telemetry.New(x.engine, telemetry.Config{
			Spec:      *cfg.Trace,
			Tiers:     len(tiers),
			TierNames: tierLabels(tiers),
			Seed:      cfg.Seed,
			Horizon:   cfg.Duration,
			Arena:     cfg.Arena,
		})
		if err != nil {
			return nil, err
		}
		netCfg.Observer = x.tracer
		genCfg.Trace = x.tracer
	}
	x.network, err = queueing.New(x.engine, netCfg)
	if err != nil {
		return nil, err
	}
	x.gen, err = workload.NewGenerator(x.network, genCfg)
	if err != nil {
		return nil, err
	}
	x.gen.RecordSeries(cfg.RecordSeries)

	if cfg.Defense != nil {
		x.victim.Mem.SetSplitLockProtection(cfg.Defense.SplitLockProtection)
		if cfg.Defense.VictimReservationMBps > 0 {
			if err := x.victim.Mem.ReserveBandwidth("mysql", cfg.Defense.VictimReservationMBps); err != nil {
				return nil, fmt.Errorf("core: victim reservation: %w", err)
			}
		}
	}
	if cfg.Attack != nil {
		if err := x.wireAttack(*cfg.Attack); err != nil {
			return nil, err
		}
	}
	if cfg.Feedback != nil {
		if err := x.wireFeedback(*cfg.Feedback); err != nil {
			return nil, err
		}
	}
	if cfg.Scaling != nil {
		x.scaling, err = cloud.NewScalingGroup(cloud.ScalingGroupConfig{
			Engine:         x.engine,
			Network:        x.network,
			Tier:           x.victimTier(),
			Trigger:        cfg.Scaling.Trigger,
			MaxInstances:   cfg.Scaling.MaxInstances,
			ProvisionDelay: cfg.Scaling.ProvisionDelay,
		})
		if err != nil {
			return nil, err
		}
	}
	if cfg.LLCSamplePeriod > 0 {
		if err := x.wireLLCProfilers(); err != nil {
			return nil, err
		}
	}
	return x, nil
}

// victimTier is the bottleneck tier index (the back-most tier).
func (x *Experiment) victimTier() int { return x.network.NumTiers() - 1 }

// tierLabels extracts the tier names of a topology, falling back to the
// canonical labels for unnamed tiers.
func tierLabels(tiers []queueing.TierConfig) []string {
	names := make([]string, len(tiers))
	for i, t := range tiers {
		switch {
		case t.Name != "":
			names[i] = t.Name
		case i < len(tierNames):
			names[i] = tierNames[i]
		default:
			names[i] = fmt.Sprintf("tier%d", i)
		}
	}
	return names
}

func (x *Experiment) wireAttack(spec AttackSpec) error {
	adversaries := make([]string, 0, spec.AdversaryVMs)
	for i := 0; i < spec.AdversaryVMs; i++ {
		id := fmt.Sprintf("adversary%d", i+1)
		if err := x.platform.CoLocate(id, "mysql", cloud.PrivateCloudVM(), 0); err != nil {
			return fmt.Errorf("core: co-locating %s: %w", id, err)
		}
		adversaries = append(adversaries, id)
	}
	injector, err := attack.NewMemoryInjector(attack.MemoryInjectorConfig{
		Host:         x.victim.Mem,
		Kind:         spec.Kind,
		AdversaryVMs: adversaries,
		VictimVM:     "mysql",
		Profile:      memmodel.MySQLProfile(),
		Network:      x.network,
		VictimTier:   x.victimTier(),
	})
	if err != nil {
		return err
	}
	x.injector = injector
	x.burster, err = attack.NewBurster(x.engine, injector, spec.Params)
	return err
}

func (x *Experiment) wireFeedback(spec FeedbackSpec) error {
	// The probe behaves like a real HTTP client: a dropped connection is
	// retransmitted after the TCP RTO, and the reported latency spans
	// the whole exchange — so the commander sees the damage it causes.
	policy := queueing.DefaultRetransmit()
	var fire func(first time.Duration, attempt int, traceID uint64, done func(rt time.Duration))
	fire = func(first time.Duration, attempt int, traceID uint64, done func(rt time.Duration)) {
		_, err := x.network.Submit(queueing.SubmitOpts{
			Class:        probeClass,
			FirstAttempt: first,
			Attempt:      attempt,
			TraceID:      traceID,
			OnComplete:   func(req *queueing.Request) { done(req.ClientRT()) },
			OnDrop: func(req *queueing.Request) {
				next := req.Attempt + 1
				rto := policy.RTO(next)
				if next > policy.MaxRetries {
					// Give up; report the time burned so far.
					if x.tracer != nil {
						x.tracer.Abandon(req.TraceID)
					}
					done(x.engine.Now() + rto - req.FirstAttempt)
					return
				}
				f, id := req.FirstAttempt, req.TraceID
				if x.tracer != nil {
					x.tracer.RetransmitScheduled(id, next, x.engine.Now()+rto)
				}
				x.engine.Schedule(rto, func() { fire(f, next, id, done) })
			},
		})
		if err != nil {
			panic(err) // probeClass is a valid constant
		}
	}
	submit := func(done func(rt time.Duration)) { fire(0, 0, 0, done) }
	prober, err := control.NewProber(x.engine, spec.Prober, submit)
	if err != nil {
		return err
	}
	x.prober = prober
	x.commander, err = control.NewCommander(spec.Goal, spec.Bounds, x.burster.Params())
	return err
}

func (x *Experiment) wireLLCProfilers() error {
	mem := x.victim.Mem
	gauge := func(vmID string) func() float64 {
		return func() float64 {
			rate, err := mem.LLCMissRate(vmID)
			if err != nil {
				panic(err) // VMs were placed at construction
			}
			return rate
		}
	}
	var err error
	x.llcVictim, err = monitor.NewPeriodicSampler(x.engine, "llc-mysql", x.cfg.LLCSamplePeriod, gauge("mysql"))
	if err != nil {
		return err
	}
	if x.cfg.Attack != nil && x.cfg.Attack.AdversaryVMs > 0 {
		x.llcAdversary, err = monitor.NewPeriodicSampler(x.engine, "llc-adversary", x.cfg.LLCSamplePeriod, gauge("adversary1"))
		if err != nil {
			return err
		}
	}
	return nil
}

// cancelCheckEvery is how many fired events pass between context checks in
// RunContext. Checking is cheap (an atomic load inside ctx.Err), but doing
// it between every pair of events would still dominate the hot loop; every
// few thousand events keeps cancellation latency far below a simulated
// second at experiment event rates.
const cancelCheckEvery = 4096

// Run executes warm-up plus the measured phase and returns the report. An
// experiment runs once; further calls return an error. It is equivalent to
// RunContext with a background context.
func (x *Experiment) Run() (*Report, error) { return x.RunContext(context.Background()) }

// RunContext is Run with cooperative cancellation: the event loop checks
// ctx every few thousand events and on cancellation returns ctx's error
// with a nil Report — a canceled run never surfaces partial results as
// success, matching the sweep engine's semantics. Cancellation does not
// perturb determinism: the event sequence up to the stop point is exactly
// the uncancelled run's prefix.
func (x *Experiment) RunContext(ctx context.Context) (*Report, error) {
	if x.ran {
		return nil, fmt.Errorf("core: experiment already ran")
	}
	x.ran = true
	if ctx == nil {
		ctx = context.Background()
	}
	check := func() error { return ctx.Err() }
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	x.gen.Start()
	if err := x.engine.RunChecked(x.cfg.Warmup, cancelCheckEvery, check); err != nil {
		return nil, err
	}
	x.gen.ResetMetrics()
	x.network.ResetTierSamples()
	measureStart := x.engine.Now()
	if x.tracer != nil {
		x.tracer.Reset(measureStart)
	}

	if x.burster != nil {
		x.burster.Start()
	}
	if x.prober != nil {
		x.prober.Start()
	}
	if x.scaling != nil {
		x.scaling.Start()
	}
	if x.llcVictim != nil {
		x.llcVictim.Start()
	}
	if x.llcAdversary != nil {
		x.llcAdversary.Start()
	}
	if x.commander != nil {
		x.scheduleDecision()
	}

	end := measureStart + x.cfg.Duration
	if err := x.engine.RunChecked(end, cancelCheckEvery, check); err != nil {
		return nil, err
	}

	// Quiesce: stop sources and attack, then drain in-flight work.
	x.gen.Stop()
	if x.burster != nil {
		x.burster.Stop()
	}
	if x.prober != nil {
		x.prober.Stop()
	}
	if x.scaling != nil {
		x.scaling.Stop()
	}
	if x.llcVictim != nil {
		x.llcVictim.Stop()
	}
	if x.llcAdversary != nil {
		x.llcAdversary.Stop()
	}
	if err := x.engine.RunAllChecked(50_000_000, cancelCheckEvery, check); err != nil {
		if ctx.Err() != nil {
			return nil, err
		}
		return nil, fmt.Errorf("core: drain phase: %w", err)
	}
	return x.buildReport(measureStart, end)
}

func (x *Experiment) scheduleDecision() {
	every := x.cfg.Feedback.DecisionEvery
	x.engine.Schedule(every, func() {
		if x.burster == nil || !withinRun(x) {
			return
		}
		obs := control.Observation{
			TailRT: x.prober.Percentile(x.cfg.Feedback.Goal.Percentile),
			// The FE's conservative millibottleneck estimate is the
			// attack program's execution time, i.e. the burst length.
			Millibottleneck: x.burster.Params().BurstLength,
		}
		next := x.commander.Decide(obs)
		if err := x.burster.SetParams(next); err != nil {
			panic(err) // commander clamps to valid bounds
		}
		x.scheduleDecision()
	})
}

// withinRun reports whether the measured phase is still in progress.
func withinRun(x *Experiment) bool {
	return x.engine.Now() < x.cfg.Warmup+x.cfg.Duration
}

// Engine exposes the simulation engine (for tests and figure scripts).
func (x *Experiment) Engine() *sim.Engine { return x.engine }

// Network exposes the n-tier system.
func (x *Experiment) Network() *queueing.Network { return x.network }

// Generator exposes the client population.
func (x *Experiment) Generator() *workload.Generator { return x.gen }

// Burster exposes the attack scheduler, or nil without an attack.
func (x *Experiment) Burster() *attack.Burster { return x.burster }

// Commander exposes the feedback controller, or nil without feedback.
func (x *Experiment) Commander() *control.Commander { return x.commander }

// Prober exposes the tail prober, or nil without feedback.
func (x *Experiment) Prober() *control.Prober { return x.prober }

// Scaling exposes the auto-scaling group, or nil without scaling.
func (x *Experiment) Scaling() *cloud.ScalingGroup { return x.scaling }

// VictimHost exposes the physical host co-hosting MySQL and adversaries.
func (x *Experiment) VictimHost() *cloud.HostNode { return x.victim }

// Tracer exposes the per-request tracer, or nil when Config.Trace is unset.
func (x *Experiment) Tracer() *telemetry.Tracer { return x.tracer }

// LLCVictimSeries returns the sampled MySQL-VM LLC miss series, or nil.
func (x *Experiment) LLCVictimSeries() *monitor.PeriodicSampler { return x.llcVictim }

// LLCAdversarySeries returns the adversary-VM LLC miss series, or nil.
func (x *Experiment) LLCAdversarySeries() *monitor.PeriodicSampler { return x.llcAdversary }
