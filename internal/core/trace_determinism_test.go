package core

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"memca/internal/telemetry"
)

// traceArtifacts runs one attacked experiment with tracing enabled and
// exports every trace artifact into dir, returning each file's bytes.
func traceArtifacts(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Duration = 45 * time.Second
	cfg.Warmup = 10 * time.Second
	spec := telemetry.DefaultSpec()
	spec.TailKeep = 256
	spec.EventRing = 1 << 14
	cfg.Trace = &spec

	x, err := NewExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := x.Run(); err != nil {
		t.Fatal(err)
	}
	tr := x.Tracer()
	if tr == nil {
		t.Fatal("tracing enabled but Tracer() is nil")
	}
	if tr.Closed() == 0 {
		t.Fatal("tracer closed no traces")
	}
	if err := tr.WriteChromeTrace(filepath.Join(dir, "trace.json")); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteOTLP(filepath.Join(dir, "otlp.json"), telemetry.DefaultOTLPSpec()); err != nil {
		t.Fatal(err)
	}
	if err := telemetry.WriteAttributionCSV(filepath.Join(dir, "attribution.csv"), tr.TierNames(), tr.TailAttributions()); err != nil {
		t.Fatal(err)
	}
	if err := telemetry.WriteAttributionCSV(filepath.Join(dir, "attribution_head.csv"), tr.TierNames(), tr.HeadAttributions()); err != nil {
		t.Fatal(err)
	}
	for _, tl := range tr.Timelines() {
		name := filepath.Join(dir, "timeline_"+tl.Res.String()+".csv")
		if err := telemetry.WriteTimelineCSV(name, tl); err != nil {
			t.Fatal(err)
		}
	}
	files := make(map[string][]byte)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range entries {
		data, err := os.ReadFile(filepath.Join(dir, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		files[ent.Name()] = data
	}
	return files
}

// TestTraceExportDeterminism pins the tracing determinism contract:
// two experiments built from the same seed export byte-identical Chrome
// traces, attribution CSVs, and timelines. Tracing must be a pure
// observer — if it ever perturbed the simulation (an engine RNG draw, a
// map-order dependence, a time.Now leak), this is the test that catches
// it.
func TestTraceExportDeterminism(t *testing.T) {
	a := traceArtifacts(t, t.TempDir())
	b := traceArtifacts(t, t.TempDir())
	if len(a) != len(b) {
		t.Fatalf("run 1 wrote %d artifacts, run 2 wrote %d", len(a), len(b))
	}
	if len(a) < 4 {
		t.Fatalf("expected trace + attributions + timelines, got %d files", len(a))
	}
	for name, want := range a {
		got, ok := b[name]
		if !ok {
			t.Errorf("run 2 missing %s", name)
			continue
		}
		if string(got) != string(want) {
			t.Errorf("%s differs between identical-seed runs (%d vs %d bytes)", name, len(want), len(got))
		}
	}
}
