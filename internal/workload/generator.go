package workload

import (
	"fmt"
	"math/rand"
	"time"

	"memca/internal/queueing"
	"memca/internal/sim"
	"memca/internal/stats"
)

// GeneratorConfig parameterizes a closed-loop client population.
type GeneratorConfig struct {
	// Clients is the number of concurrent emulated users.
	Clients int
	// ThinkTime separates a response from the user's next request
	// (RUBBoS default: exponential with 7 s mean).
	ThinkTime sim.Dist
	// Profile is the browsing model.
	Profile Profile
	// Retransmit governs dropped-request retries; zero RTOMin disables.
	Retransmit queueing.RetransmitPolicy
	// RampUp staggers session starts uniformly over this window so all
	// clients don't fire at once; zero means start with one think draw.
	RampUp time.Duration
	// Trace, when non-nil, observes the client-side trace events the
	// network cannot see: scheduled retransmissions and abandoned pages.
	Trace TraceHook
	// Arena, when non-nil, backs the client-side samples and the RT
	// series, so repeated runs reuse slab storage. The caller owns the
	// arena's lifecycle (same rules as queueing.Config.Arena). Nil keeps
	// plain heap allocation.
	Arena *stats.Arena
}

// TraceHook receives the client-side lifecycle events of a traced request
// that happen outside the queueing network: the retransmission timer that
// fires between a drop and the next submit, and the moment a client gives
// up on a page. internal/telemetry implements it; the generator only needs
// this narrow view, which keeps workload free of a telemetry dependency.
type TraceHook interface {
	// RetransmitScheduled fires when a dropped attempt is queued for
	// retransmission: the client will resubmit trace traceID as attempt
	// `attempt` at virtual time fireAt.
	RetransmitScheduled(traceID uint64, attempt int, fireAt time.Duration)
	// TraceAbandoned fires when the client gives up on the trace: retries
	// exhausted, or the session retired with a retransmission pending.
	TraceAbandoned(traceID uint64)
}

// DefaultGeneratorConfig returns the paper's workload: 3500 users, 7 s
// mean think time, RFC 6298 retransmission.
func DefaultGeneratorConfig() GeneratorConfig {
	return GeneratorConfig{
		Clients:    3500,
		ThinkTime:  sim.NewExponential(7 * time.Second),
		Profile:    RUBBoSProfile(),
		Retransmit: queueing.DefaultRetransmit(),
		RampUp:     10 * time.Second,
	}
}

// genRetrans is one pending page retransmission, pooled so the drop-retry
// path allocates nothing in steady state.
type genRetrans struct {
	page    int
	first   time.Duration
	attempt int
	traceID uint64
}

// Generator drives a client population against a network and aggregates
// client-observed response times. The steady-state session loop —
// think, visit, submit, complete — performs no heap allocations: page
// context rides on Request.UserData (small ints convert to `any` without
// allocating), submissions reuse two prebuilt callbacks, and think/visit
// and retransmission events use the engine's Actor path.
type Generator struct {
	engine  *sim.Engine
	network *queueing.Network
	cfg     GeneratorConfig

	running bool
	// population is the nominal live-session count.
	population int
	// retireNeeded is how many sessions must die at their next activity
	// to reach the target population (shrink is lazy; see
	// SetPopulation).
	retireNeeded int

	clientRT *stats.Sample
	perPage  []*stats.Sample
	rtSeries *stats.TimeSeries // (completion time, RT in seconds), Fig 9d

	onComplete  func(*queueing.Request)
	onDrop      func(*queueing.Request)
	freeRetrans []*genRetrans

	recordSeries bool
	requests     uint64
	drops        uint64
	retrans      uint64
	failures     uint64
}

// NewGenerator validates the configuration against the network and builds
// a generator. Call Start to launch the client population.
func NewGenerator(network *queueing.Network, cfg GeneratorConfig) (*Generator, error) {
	if network == nil {
		return nil, fmt.Errorf("workload: network must not be nil")
	}
	if cfg.Clients <= 0 {
		return nil, fmt.Errorf("workload: Clients must be positive, got %d", cfg.Clients)
	}
	if cfg.ThinkTime == nil {
		return nil, fmt.Errorf("workload: ThinkTime must not be nil")
	}
	if cfg.Retransmit.RTOMin != 0 {
		if err := cfg.Retransmit.Validate(); err != nil {
			return nil, err
		}
	}
	if err := cfg.Profile.Validate(network.NumClasses()); err != nil {
		return nil, err
	}
	g := &Generator{
		engine:   network.Engine(),
		network:  network,
		cfg:      cfg,
		clientRT: stats.NewSampleIn(cfg.Arena, 4096),
		rtSeries: stats.NewTimeSeriesIn(cfg.Arena, "client-rt"),
	}
	g.perPage = make([]*stats.Sample, len(cfg.Profile.Pages))
	for i := range g.perPage {
		g.perPage[i] = stats.NewSampleIn(cfg.Arena, 256)
	}
	g.onComplete = func(req *queueing.Request) {
		page := req.UserData.(int)
		rt := req.ClientRT()
		g.clientRT.Add(rt)
		g.perPage[page].Add(rt)
		if g.recordSeries {
			g.rtSeries.Add(req.Done, rt.Seconds())
		}
		g.think(page)
	}
	g.onDrop = func(req *queueing.Request) {
		g.drops++
		g.handleDrop(req.UserData.(int), req)
	}
	return g, nil
}

// Act makes the generator the sim.Actor for its session events: a bare
// int arg is the next page visit, a *genRetrans is a due retransmission.
func (g *Generator) Act(arg any) {
	if rec, ok := arg.(*genRetrans); ok {
		page, first, attempt, traceID := rec.page, rec.first, rec.attempt, rec.traceID
		g.freeRetrans = append(g.freeRetrans, rec)
		if !g.running {
			// The population stopped with this retransmission pending; the
			// trace will never close on its own.
			if g.cfg.Trace != nil {
				g.cfg.Trace.TraceAbandoned(traceID)
			}
			return
		}
		g.submit(page, first, attempt, traceID)
		return
	}
	g.visit(arg.(int))
}

// RecordSeries toggles per-completion (time, RT) series recording, used by
// the fine-grained snapshot figure. Off by default to bound memory.
func (g *Generator) RecordSeries(on bool) { g.recordSeries = on }

// Start launches every client session. It is idempotent while running.
func (g *Generator) Start() {
	if g.running {
		return
	}
	g.running = true
	g.population = g.cfg.Clients
	g.spawn(g.cfg.Clients, g.cfg.RampUp)
}

// spawn launches n new sessions staggered over rampUp.
func (g *Generator) spawn(n int, rampUp time.Duration) {
	rng := g.engine.Rand()
	for c := 0; c < n; c++ {
		page := samplePMF(rng, g.cfg.Profile.Initial)
		var delay time.Duration
		if rampUp > 0 {
			delay = time.Duration(rng.Int63n(int64(rampUp)))
		} else {
			delay = g.cfg.ThinkTime.Sample(rng)
		}
		g.engine.ScheduleCall(delay, g, page)
	}
}

// SetPopulation changes the live client population, modelling organic
// load dynamics (flash crowds, diurnal ramps). Growth spawns new sessions
// staggered over rampUp; shrinkage retires sessions lazily at their next
// activity. It returns the previous population.
func (g *Generator) SetPopulation(n int, rampUp time.Duration) int {
	prev := g.population
	if n < 0 {
		n = 0
	}
	if !g.running {
		g.cfg.Clients = n
		return prev
	}
	delta := n - g.population
	g.population = n
	if delta > 0 {
		// Cancel pending retirements before spawning fresh sessions.
		if g.retireNeeded > 0 {
			cancel := g.retireNeeded
			if cancel > delta {
				cancel = delta
			}
			g.retireNeeded -= cancel
			delta -= cancel
		}
		g.spawn(delta, rampUp)
		return prev
	}
	g.retireNeeded += -delta
	return prev
}

// Population returns the nominal live-session count.
func (g *Generator) Population() int { return g.population }

// Stop halts the population: sessions end after their current request or
// think period.
func (g *Generator) Stop() { g.running = false }

// sessionContinues reports whether the calling session should keep
// running, consuming one pending retirement if any.
func (g *Generator) sessionContinues() bool {
	if !g.running {
		return false
	}
	if g.retireNeeded > 0 {
		g.retireNeeded--
		return false
	}
	return true
}

// visit issues the request for the given page, then continues the session.
func (g *Generator) visit(page int) {
	if !g.sessionContinues() {
		return
	}
	g.requests++
	g.submit(page, 0, 0, 0)
}

// submit sends one attempt of the current page request. The page index
// travels on UserData so the shared completion callbacks can attribute the
// response without a per-request closure. traceID is zero for first
// attempts (the network assigns a fresh trace) and carries the original
// trace across retransmissions.
func (g *Generator) submit(page int, firstAttempt time.Duration, attempt int, traceID uint64) {
	spec := g.cfg.Profile.Pages[page]
	_, err := g.network.Submit(queueing.SubmitOpts{
		Class:        spec.Class,
		FirstAttempt: firstAttempt,
		Attempt:      attempt,
		TraceID:      traceID,
		UserData:     page,
		OnComplete:   g.onComplete,
		OnDrop:       g.onDrop,
	})
	if err != nil {
		// Classes were validated at construction; a failure is a bug.
		panic(err)
	}
}

func (g *Generator) handleDrop(page int, req *queueing.Request) {
	next := req.Attempt + 1
	if g.cfg.Retransmit.RTOMin == 0 || next > g.cfg.Retransmit.MaxRetries {
		// The user gives up on this page and browses on after thinking.
		g.failures++
		if g.cfg.Trace != nil {
			g.cfg.Trace.TraceAbandoned(req.TraceID)
		}
		g.think(page)
		return
	}
	g.retrans++
	if len(g.freeRetrans) == 0 {
		// Refill in blocks: one allocation covers the next 64 pool
		// misses during the cold-start ramp.
		recs := make([]genRetrans, 64)
		for i := range recs {
			g.freeRetrans = append(g.freeRetrans, &recs[i])
		}
	}
	k := len(g.freeRetrans)
	rec := g.freeRetrans[k-1]
	g.freeRetrans = g.freeRetrans[:k-1]
	rec.page = page
	rec.first = req.FirstAttempt
	rec.attempt = next
	rec.traceID = req.TraceID
	rto := g.cfg.Retransmit.RTO(next)
	if g.cfg.Trace != nil {
		g.cfg.Trace.RetransmitScheduled(req.TraceID, next, g.engine.Now()+rto)
	}
	g.engine.ScheduleCall(rto, g, rec)
}

// think schedules the next page visit after a think-time draw.
func (g *Generator) think(page int) {
	if !g.running {
		return
	}
	rng := g.engine.Rand()
	next := samplePMF(rng, g.cfg.Profile.Transitions[page])
	g.engine.ScheduleCall(g.cfg.ThinkTime.Sample(rng), g, next)
}

// samplePMF draws an index from a probability mass function.
func samplePMF(rng *rand.Rand, pmf []float64) int {
	u := rng.Float64()
	acc := 0.0
	for i, p := range pmf {
		acc += p
		if u < acc {
			return i
		}
	}
	return len(pmf) - 1
}

// Profile returns the browsing model the generator was built with. The
// Profile's slices are shared; callers must not modify them.
func (g *Generator) Profile() Profile { return g.cfg.Profile }

// ClientRT returns the aggregated client response-time sample (shared; do
// not mutate).
func (g *Generator) ClientRT() *stats.Sample { return g.clientRT }

// PageRT returns the response-time sample for one page index.
func (g *Generator) PageRT(page int) (*stats.Sample, error) {
	if page < 0 || page >= len(g.perPage) {
		return nil, fmt.Errorf("workload: page %d out of range [0,%d)", page, len(g.perPage))
	}
	return g.perPage[page], nil
}

// RTSeries returns the per-completion response-time series (populated only
// while RecordSeries(true)).
func (g *Generator) RTSeries() *stats.TimeSeries { return g.rtSeries }

// ResetMetrics discards accumulated samples in place, e.g. after a
// warm-up phase, without disturbing the client population. Backing
// storage is kept for reuse.
func (g *Generator) ResetMetrics() {
	g.clientRT.Reset()
	for i := range g.perPage {
		g.perPage[i].Reset()
	}
	g.rtSeries.Reset()
	g.requests, g.drops, g.retrans, g.failures = 0, 0, 0, 0
}

// Requests returns the number of page visits issued (first attempts).
func (g *Generator) Requests() uint64 { return g.requests }

// Drops returns the number of dropped attempts observed.
func (g *Generator) Drops() uint64 { return g.drops }

// Retransmissions returns how many drops were retried.
func (g *Generator) Retransmissions() uint64 { return g.retrans }

// Failures returns how many page visits were abandoned after exhausting
// retries.
func (g *Generator) Failures() uint64 { return g.failures }
