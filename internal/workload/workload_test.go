package workload

import (
	"math/rand"
	"testing"
	"time"

	"memca/internal/queueing"
	"memca/internal/sim"
)

func rubbosNetwork(t *testing.T, e *sim.Engine) *queueing.Network {
	t.Helper()
	n, err := queueing.New(e, queueing.Config{
		Mode:    queueing.ModeNTierRPC,
		Tiers:   RUBBoSTiers(),
		Classes: RUBBoSClasses(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestRUBBoSProfileValid(t *testing.T) {
	p := RUBBoSProfile()
	if err := p.Validate(len(RUBBoSClasses())); err != nil {
		t.Fatalf("default profile invalid: %v", err)
	}
}

func TestRUBBoSTiersSatisfyCondition1(t *testing.T) {
	tiers := RUBBoSTiers()
	for i := 1; i < len(tiers); i++ {
		if tiers[i-1].QueueLimit <= tiers[i].QueueLimit {
			t.Errorf("queue limits not descending: %s %d <= %s %d",
				tiers[i-1].Name, tiers[i-1].QueueLimit, tiers[i].Name, tiers[i].QueueLimit)
		}
	}
}

func TestProfileValidation(t *testing.T) {
	base := RUBBoSProfile()
	nc := len(RUBBoSClasses())

	p := base
	p.Pages = nil
	if err := p.Validate(nc); err == nil {
		t.Error("empty pages accepted")
	}

	p = base
	p.Pages = append([]PageSpec(nil), base.Pages...)
	p.Pages[0].Class = 99
	if err := p.Validate(nc); err == nil {
		t.Error("bad class accepted")
	}

	p = base
	p.Transitions = base.Transitions[:3]
	if err := p.Validate(nc); err == nil {
		t.Error("short transition matrix accepted")
	}

	p = base
	rows := make([][]float64, len(base.Transitions))
	copy(rows, base.Transitions)
	badRow := append([]float64(nil), base.Transitions[0]...)
	badRow[0] += 0.5
	rows[0] = badRow
	p.Transitions = rows
	if err := p.Validate(nc); err == nil {
		t.Error("non-stochastic row accepted")
	}

	p = base
	init := append([]float64(nil), base.Initial...)
	init[0] = -0.1
	p.Initial = init
	if err := p.Validate(nc); err == nil {
		t.Error("negative initial accepted")
	}
}

func TestGeneratorValidation(t *testing.T) {
	e := sim.NewEngine(1)
	n := rubbosNetwork(t, e)
	good := GeneratorConfig{
		Clients:   10,
		ThinkTime: sim.NewExponential(time.Second),
		Profile:   RUBBoSProfile(),
	}
	if _, err := NewGenerator(n, good); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if _, err := NewGenerator(nil, good); err == nil {
		t.Error("nil network accepted")
	}
	bad := good
	bad.Clients = 0
	if _, err := NewGenerator(n, bad); err == nil {
		t.Error("zero clients accepted")
	}
	bad = good
	bad.ThinkTime = nil
	if _, err := NewGenerator(n, bad); err == nil {
		t.Error("nil think time accepted")
	}
	bad = good
	bad.Retransmit = queueing.RetransmitPolicy{RTOMin: time.Second, Backoff: 0.1}
	if _, err := NewGenerator(n, bad); err == nil {
		t.Error("bad retransmit accepted")
	}
}

func TestClosedLoopThroughputMatchesLittlesLaw(t *testing.T) {
	// 200 clients, 2s think, fast service: throughput ≈ N/Z = 100/s.
	e := sim.NewEngine(5)
	n := rubbosNetwork(t, e)
	g, err := NewGenerator(n, GeneratorConfig{
		Clients:    200,
		ThinkTime:  sim.NewExponential(2 * time.Second),
		Profile:    RUBBoSProfile(),
		Retransmit: queueing.DefaultRetransmit(),
		RampUp:     2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	horizon := 60 * time.Second
	e.Run(horizon)
	g.Stop()
	if err := e.RunAll(0); err != nil {
		t.Fatal(err)
	}
	rate := float64(g.ClientRT().Len()) / horizon.Seconds()
	if rate < 85 || rate > 110 {
		t.Errorf("closed-loop throughput %v req/s, want ~100 (Little's law)", rate)
	}
}

func TestBaselineTailUnder100ms(t *testing.T) {
	// The paper's no-attack baseline: every request answers within
	// ~100 ms. Scaled-down population with the same per-client load.
	e := sim.NewEngine(9)
	n := rubbosNetwork(t, e)
	g, err := NewGenerator(n, GeneratorConfig{
		Clients:    700,
		ThinkTime:  sim.NewExponential(1400 * time.Millisecond), // same λ as 3500 @ 7s
		Profile:    RUBBoSProfile(),
		Retransmit: queueing.DefaultRetransmit(),
		RampUp:     2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	e.Run(40 * time.Second)
	g.Stop()
	if err := e.RunAll(0); err != nil {
		t.Fatal(err)
	}
	if g.ClientRT().Len() < 5000 {
		t.Fatalf("too few samples: %d", g.ClientRT().Len())
	}
	p95 := g.ClientRT().Percentile(95)
	if p95 > 100*time.Millisecond {
		t.Errorf("baseline p95 = %v, want <= 100ms", p95)
	}
	if g.Drops() != 0 {
		t.Errorf("baseline dropped %d requests", g.Drops())
	}
}

func TestPageMixRoughlyMatchesStationaryDistribution(t *testing.T) {
	// Run the chain directly for many steps and compare against the
	// generator's page visit counts.
	e := sim.NewEngine(11)
	n := rubbosNetwork(t, e)
	g, err := NewGenerator(n, GeneratorConfig{
		Clients:   300,
		ThinkTime: sim.NewExponential(500 * time.Millisecond),
		Profile:   RUBBoSProfile(),
		RampUp:    time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	e.Run(60 * time.Second)
	g.Stop()
	if err := e.RunAll(0); err != nil {
		t.Fatal(err)
	}

	visits := make([]float64, len(RUBBoSProfile().Pages))
	total := 0.0
	for i := range visits {
		s, err := g.PageRT(i)
		if err != nil {
			t.Fatal(err)
		}
		visits[i] = float64(s.Len())
		total += visits[i]
	}
	if total == 0 {
		t.Fatal("no page visits recorded")
	}

	// Stationary distribution via direct chain walk.
	p := RUBBoSProfile()
	rng := rand.New(rand.NewSource(3))
	counts := make([]float64, len(p.Pages))
	state := samplePMF(rng, p.Initial)
	const steps = 300000
	for i := 0; i < steps; i++ {
		state = samplePMF(rng, p.Transitions[state])
		counts[state]++
	}
	for i := range counts {
		want := counts[i] / steps
		got := visits[i] / total
		if want > 0.02 && (got < want*0.7 || got > want*1.3) {
			t.Errorf("page %d (%s) frequency %v, stationary %v", i, p.Pages[i].Name, got, want)
		}
	}
}

func TestGeneratorRetransmitsOnDrop(t *testing.T) {
	// A brutal stall on MySQL forces front-tier drops; clients must
	// retransmit and eventually record RTs above the 1s RTO.
	e := sim.NewEngine(13)
	n := rubbosNetwork(t, e)
	g, err := NewGenerator(n, GeneratorConfig{
		Clients:    700,
		ThinkTime:  sim.NewExponential(1400 * time.Millisecond),
		Profile:    RUBBoSProfile(),
		Retransmit: queueing.DefaultRetransmit(),
		RampUp:     time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	e.Schedule(5*time.Second, func() { _ = n.SetCapacityMultiplier(2, 0.01) })
	e.Schedule(7*time.Second, func() { _ = n.SetCapacityMultiplier(2, 1) })
	e.Run(20 * time.Second)
	g.Stop()
	if err := e.RunAll(0); err != nil {
		t.Fatal(err)
	}
	if g.Drops() == 0 {
		t.Fatal("no drops under a 2-second full stall")
	}
	if g.Retransmissions() == 0 {
		t.Fatal("no retransmissions recorded")
	}
	if max := g.ClientRT().Max(); max < time.Second {
		t.Errorf("max client RT %v, want >= 1s (retransmitted requests)", max)
	}
}

func TestResetMetrics(t *testing.T) {
	e := sim.NewEngine(17)
	n := rubbosNetwork(t, e)
	g, err := NewGenerator(n, GeneratorConfig{
		Clients:   50,
		ThinkTime: sim.NewExponential(500 * time.Millisecond),
		Profile:   RUBBoSProfile(),
		RampUp:    time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	e.Run(10 * time.Second)
	if g.ClientRT().Len() == 0 {
		t.Fatal("no samples before reset")
	}
	g.ResetMetrics()
	if g.ClientRT().Len() != 0 || g.Requests() != 0 {
		t.Error("metrics not cleared")
	}
	e.Run(20 * time.Second)
	if g.ClientRT().Len() == 0 {
		t.Error("no samples after reset; population died")
	}
	g.Stop()
	if err := e.RunAll(0); err != nil {
		t.Fatal(err)
	}
}

func TestRecordSeries(t *testing.T) {
	e := sim.NewEngine(19)
	n := rubbosNetwork(t, e)
	g, err := NewGenerator(n, GeneratorConfig{
		Clients:   20,
		ThinkTime: sim.NewExponential(200 * time.Millisecond),
		Profile:   RUBBoSProfile(),
	})
	if err != nil {
		t.Fatal(err)
	}
	g.RecordSeries(true)
	g.Start()
	e.Run(5 * time.Second)
	g.Stop()
	if err := e.RunAll(0); err != nil {
		t.Fatal(err)
	}
	if g.RTSeries().Len() == 0 {
		t.Error("series not recorded")
	}
	if g.RTSeries().Len() != g.ClientRT().Len() {
		t.Errorf("series %d entries, sample %d", g.RTSeries().Len(), g.ClientRT().Len())
	}
	if _, err := g.PageRT(-1); err == nil {
		t.Error("negative page accepted")
	}
}

func TestStopQuiescesPopulation(t *testing.T) {
	e := sim.NewEngine(23)
	n := rubbosNetwork(t, e)
	g, err := NewGenerator(n, GeneratorConfig{
		Clients:   100,
		ThinkTime: sim.NewExponential(300 * time.Millisecond),
		Profile:   RUBBoSProfile(),
	})
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	e.Run(5 * time.Second)
	g.Stop()
	if err := e.RunAll(0); err != nil {
		t.Fatal(err)
	}
	if n.InFlight() != 0 {
		t.Errorf("requests in flight after Stop and drain: %d", n.InFlight())
	}
	before := g.Requests()
	e.Run(20 * time.Second)
	if g.Requests() != before {
		t.Error("requests issued after Stop")
	}
}

func TestSetPopulationGrowth(t *testing.T) {
	e := sim.NewEngine(31)
	n := rubbosNetwork(t, e)
	g, err := NewGenerator(n, GeneratorConfig{
		Clients:   100,
		ThinkTime: sim.NewExponential(time.Second),
		Profile:   RUBBoSProfile(),
		RampUp:    time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	e.Run(20 * time.Second)
	baseRate := float64(g.ClientRT().Len()) / 20

	// Double the population: throughput should roughly double.
	if prev := g.SetPopulation(200, time.Second); prev != 100 {
		t.Errorf("previous population = %d, want 100", prev)
	}
	if g.Population() != 200 {
		t.Errorf("Population = %d, want 200", g.Population())
	}
	g.ResetMetrics()
	e.Run(50 * time.Second)
	grownRate := float64(g.ClientRT().Len()) / 30
	if grownRate < baseRate*1.6 || grownRate > baseRate*2.4 {
		t.Errorf("throughput %v after doubling, want ~2x %v", grownRate, baseRate)
	}
	g.Stop()
	if err := e.RunAll(0); err != nil {
		t.Fatal(err)
	}
}

func TestSetPopulationShrinkAndRegrow(t *testing.T) {
	e := sim.NewEngine(33)
	n := rubbosNetwork(t, e)
	g, err := NewGenerator(n, GeneratorConfig{
		Clients:   200,
		ThinkTime: sim.NewExponential(500 * time.Millisecond),
		Profile:   RUBBoSProfile(),
		RampUp:    time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	e.Run(10 * time.Second)

	// Shrink to a quarter, let retirements drain, then regrow to half.
	g.SetPopulation(50, 0)
	e.Run(20 * time.Second) // several think cycles: all retirements land
	g.ResetMetrics()
	e.Run(70 * time.Second) // 40s measurement window
	shrunkRate := float64(g.ClientRT().Len()) / 40
	// 50 clients at 0.5s think ≈ 100 req/s.
	if shrunkRate < 70 || shrunkRate > 130 {
		t.Errorf("shrunk throughput %v req/s, want ~100", shrunkRate)
	}

	g.SetPopulation(100, time.Second)
	e.Run(85 * time.Second) // let the regrowth settle
	g.ResetMetrics()
	e.Run(125 * time.Second) // 40s measurement window
	regrownRate := float64(g.ClientRT().Len()) / 40
	if regrownRate < 150 || regrownRate > 260 {
		t.Errorf("regrown throughput %v req/s, want ~200", regrownRate)
	}
	g.Stop()
	if err := e.RunAll(0); err != nil {
		t.Fatal(err)
	}
}

func TestSetPopulationBeforeStart(t *testing.T) {
	e := sim.NewEngine(35)
	n := rubbosNetwork(t, e)
	g, err := NewGenerator(n, GeneratorConfig{
		Clients:   10,
		ThinkTime: sim.NewExponential(time.Second),
		Profile:   RUBBoSProfile(),
	})
	if err != nil {
		t.Fatal(err)
	}
	g.SetPopulation(30, 0)
	g.Start()
	if g.Population() != 30 {
		t.Errorf("Population = %d, want 30", g.Population())
	}
	g.Stop()
}
