// Package workload emulates the RUBBoS benchmark's client population: N
// concurrent users navigating a news site through a Markov chain of page
// transitions with exponential think times, closed-loop against the
// queueing network, with TCP retransmission on drops — the legitimate
// traffic whose tail latency the MemCA attack amplifies.
package workload

import (
	"fmt"
	"time"

	"memca/internal/queueing"
	"memca/internal/sim"
)

// PageSpec names one page type and binds it to a queueing request class.
type PageSpec struct {
	// Name is the RUBBoS interaction name.
	Name string
	// Class indexes the network's request classes.
	Class int
}

// Profile is a browsing model: pages, a Markov transition matrix, and the
// initial page distribution.
type Profile struct {
	// Pages lists the page types.
	Pages []PageSpec
	// Transitions[i][j] is the probability of visiting page j after page
	// i. Every row must sum to 1 (±1e-9).
	Transitions [][]float64
	// Initial is the distribution over the first page of a session; it
	// must sum to 1.
	Initial []float64
}

// Validate reports the first profile error, or nil. numClasses bounds the
// class indices.
func (p Profile) Validate(numClasses int) error {
	if len(p.Pages) == 0 {
		return fmt.Errorf("workload: profile needs at least one page")
	}
	for i, pg := range p.Pages {
		if pg.Class < 0 || pg.Class >= numClasses {
			return fmt.Errorf("workload: page %d (%s) class %d out of range [0,%d)", i, pg.Name, pg.Class, numClasses)
		}
	}
	if len(p.Transitions) != len(p.Pages) {
		return fmt.Errorf("workload: transition matrix has %d rows, want %d", len(p.Transitions), len(p.Pages))
	}
	for i, row := range p.Transitions {
		if len(row) != len(p.Pages) {
			return fmt.Errorf("workload: transition row %d has %d columns, want %d", i, len(row), len(p.Pages))
		}
		sum := 0.0
		for j, v := range row {
			if v < 0 {
				return fmt.Errorf("workload: transition[%d][%d] is negative", i, j)
			}
			sum += v
		}
		if sum < 1-1e-9 || sum > 1+1e-9 {
			return fmt.Errorf("workload: transition row %d sums to %v, want 1", i, sum)
		}
	}
	if len(p.Initial) != len(p.Pages) {
		return fmt.Errorf("workload: initial distribution has %d entries, want %d", len(p.Initial), len(p.Pages))
	}
	sum := 0.0
	for i, v := range p.Initial {
		if v < 0 {
			return fmt.Errorf("workload: initial[%d] is negative", i)
		}
		sum += v
	}
	if sum < 1-1e-9 || sum > 1+1e-9 {
		return fmt.Errorf("workload: initial distribution sums to %v, want 1", sum)
	}
	return nil
}

// Class indices of the RUBBoS request mix (see RUBBoSClasses).
const (
	// ClassStatic is served entirely by the web tier.
	ClassStatic = 0
	// ClassServlet reaches the application tier but not the database.
	ClassServlet = 1
	// ClassDBLight is a single-query database interaction.
	ClassDBLight = 2
	// ClassDBHeavy is a multi-join or full-text database interaction.
	ClassDBHeavy = 3
)

// RUBBoSClasses returns the request classes of the RUBBoS mix for a 3-tier
// deployment (depths are tier indices: 0 web, 1 app, 2 db).
func RUBBoSClasses() []queueing.Class {
	return []queueing.Class{
		{Name: "static", Depth: 0, DemandScale: []float64{0.5}},
		{Name: "servlet", Depth: 1, DemandScale: []float64{1, 1}},
		{Name: "db-light", Depth: 2, DemandScale: []float64{1, 1, 1}},
		{Name: "db-heavy", Depth: 2, DemandScale: []float64{1, 1.2, 2}},
	}
}

// RUBBoSTiers returns the 3-tier topology used across the reproduction's
// RUBBoS experiments: Apache, Tomcat, MySQL with descending concurrency
// limits (condition 1 of the analytical model) and two vCPUs per instance
// (the paper's c3.large).
func RUBBoSTiers() []queueing.TierConfig {
	return []queueing.TierConfig{
		{Name: "apache", QueueLimit: 100, Servers: 2, Service: sim.NewExponential(600 * time.Microsecond)},
		{Name: "tomcat", QueueLimit: 60, Servers: 2, Service: sim.NewExponential(1200 * time.Microsecond)},
		{Name: "mysql", QueueLimit: 25, Servers: 2, Service: sim.NewExponential(1600 * time.Microsecond)},
	}
}

// RUBBoSProfile returns a browsing model over nine representative RUBBoS
// interactions (the full benchmark has 24; these carry almost all of its
// load, with the same web/app/db mix: roughly 10% static, 20% app-only,
// 70% database-bound).
func RUBBoSProfile() Profile {
	pages := []PageSpec{
		{Name: "StoriesOfTheDay", Class: ClassDBLight},         // 0 (home)
		{Name: "BrowseCategories", Class: ClassServlet},        // 1
		{Name: "BrowseStoriesByCategory", Class: ClassDBLight}, // 2
		{Name: "ViewStory", Class: ClassDBHeavy},               // 3
		{Name: "ViewComment", Class: ClassDBHeavy},             // 4
		{Name: "Search", Class: ClassDBHeavy},                  // 5
		{Name: "Login", Class: ClassServlet},                   // 6
		{Name: "PostComment", Class: ClassDBLight},             // 7
		{Name: "StaticContent", Class: ClassStatic},            // 8
	}
	transitions := [][]float64{
		//  Home  BrCat BrSto View  ViewC Srch  Login Post  Static
		{0.05, 0.25, 0.10, 0.35, 0.00, 0.10, 0.05, 0.00, 0.10}, // Home
		{0.10, 0.05, 0.60, 0.10, 0.00, 0.05, 0.00, 0.00, 0.10}, // BrowseCategories
		{0.05, 0.10, 0.15, 0.55, 0.00, 0.05, 0.00, 0.00, 0.10}, // BrowseStoriesByCategory
		{0.15, 0.05, 0.15, 0.15, 0.30, 0.05, 0.05, 0.05, 0.05}, // ViewStory
		{0.10, 0.05, 0.10, 0.30, 0.20, 0.05, 0.05, 0.10, 0.05}, // ViewComment
		{0.15, 0.10, 0.10, 0.40, 0.05, 0.10, 0.00, 0.00, 0.10}, // Search
		{0.40, 0.10, 0.10, 0.20, 0.00, 0.05, 0.00, 0.10, 0.05}, // Login
		{0.20, 0.05, 0.10, 0.40, 0.15, 0.05, 0.00, 0.00, 0.05}, // PostComment
		{0.30, 0.15, 0.15, 0.25, 0.00, 0.10, 0.05, 0.00, 0.00}, // StaticContent
	}
	initial := []float64{0.6, 0.1, 0.05, 0.1, 0, 0.05, 0.1, 0, 0}
	return Profile{Pages: pages, Transitions: transitions, Initial: initial}
}
